"""Cluster deployment specs: named nodes, membership and framing, as data.

A :class:`ClusterSpec` is the single source of truth a multi-process
deployment boots from — the luna-style config model (named nodes joining a
named cluster) applied to the paper's RSM.  Every node process, the
supervisor and the socket client load the *same* spec file, so membership,
endpoints, the resilience threshold ``f`` and the wire framing can never
drift apart between processes.

Validation is loud and happens at construction: duplicate node names,
duplicate endpoints, an ``f`` the membership cannot tolerate
(``n < 3f + 1``) or an unknown framing raise :class:`ClusterError`
immediately, not at some later socket error.  Specs are immutable and
JSON round-trippable (:meth:`ClusterSpec.save` / :meth:`ClusterSpec.load`),
which is how the supervisor hands them to the node processes it spawns.

:func:`localhost_spec` builds the common case — n nodes on 127.0.0.1 —
and, with ``base_port=0``, asks the OS for free ports (binding all n
listening sockets at once, then releasing them) so concurrent clusters on
one machine do not collide.
"""

from __future__ import annotations

import json
import socket
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.core.quorum import max_faults, required_processes
from repro.engine.wire import FRAMINGS

#: Schema tag written into saved spec files (checked on load).
SPEC_SCHEMA = "repro-cluster/v1"


class ClusterError(RuntimeError):
    """A cluster deployment problem: bad spec, failed bootstrap, dead node."""


@dataclass(frozen=True)
class NodeSpec:
    """One named node: where its replica process listens."""

    name: str
    host: str
    port: int

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ClusterError(f"node name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.port, int) or not (0 < self.port < 65536):
            raise ClusterError(f"node {self.name!r} has invalid port {self.port!r} (need 1-65535)")
        if not self.host:
            raise ClusterError(f"node {self.name!r} has an empty host")

    @property
    def endpoint(self) -> str:
        """``host:port`` (display form)."""
        return f"{self.host}:{self.port}"


@dataclass(frozen=True)
class ClusterSpec:
    """An immutable deployment description shared by every cluster process."""

    #: The replica membership, in order (node names are the protocol pids).
    nodes: tuple[NodeSpec, ...]
    #: Resilience threshold; the membership must satisfy ``n >= 3f + 1``.
    f: int = 0
    #: Wire framing every socket in the cluster speaks (``json`` | ``binary``).
    framing: str = "json"
    #: Wall-clock seconds per protocol time unit (scales client retry timers).
    time_scale: float = 0.001
    #: GWTS round budget per replica.  A service has no natural horizon, so
    #: the default is effectively unbounded — a halted replica cannot serve.
    max_rounds: int = 1_000_000
    #: Client retry timeout in protocol time units (Algorithm 5/6 re-sends).
    client_retry: float = 150.0
    #: Seconds of socket quiet before a SIGTERM'd node considers its
    #: in-flight decisions drained.
    drain_idle_s: float = 0.15
    #: Hard deadline on draining: a node never outlives SIGTERM longer.
    drain_max_s: float = 2.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ClusterError("a cluster needs at least one node")
        names = [node.name for node in self.nodes]
        for name in names:
            if names.count(name) > 1:
                raise ClusterError(f"duplicate node name {name!r} in cluster spec")
        endpoints = [(node.host, node.port) for node in self.nodes]
        for node, endpoint in zip(self.nodes, endpoints):
            if endpoints.count(endpoint) > 1:
                raise ClusterError(f"duplicate endpoint {node.endpoint} in cluster spec")
        if self.f < 0:
            raise ClusterError("f must be non-negative")
        if len(self.nodes) < required_processes(self.f):
            raise ClusterError(
                f"{len(self.nodes)} node(s) cannot tolerate f={self.f} Byzantine "
                f"faults; need n >= 3f + 1 = {required_processes(self.f)}"
            )
        if self.framing not in FRAMINGS:
            raise ClusterError(f"unknown framing {self.framing!r}; known: {', '.join(FRAMINGS)}")
        if self.time_scale <= 0:
            raise ClusterError("time_scale must be positive")
        if self.max_rounds < 1:
            raise ClusterError("max_rounds must be at least 1")

    # -- membership helpers ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of replicas."""
        return len(self.nodes)

    def member_names(self) -> tuple[str, ...]:
        """The replica pids, in membership order."""
        return tuple(node.name for node in self.nodes)

    def node(self, name: str) -> NodeSpec:
        """Look up one node by name (raising loudly on unknown names)."""
        for node in self.nodes:
            if node.name == name:
                return node
        known = ", ".join(self.member_names())
        raise ClusterError(f"unknown node {name!r}; cluster members: {known}")

    # -- JSON round trip --------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form (includes the schema tag)."""
        data = asdict(self)
        data["nodes"] = [asdict(node) for node in self.nodes]
        data["schema"] = SPEC_SCHEMA
        return data

    @classmethod
    def from_dict(cls, data: dict) -> ClusterSpec:
        """Inverse of :meth:`to_dict`; malformed input raises :class:`ClusterError`."""
        if not isinstance(data, dict):
            raise ClusterError(f"cluster spec must be a JSON object, got {type(data).__name__}")
        schema = data.get("schema")
        if schema != SPEC_SCHEMA:
            raise ClusterError(f"unsupported cluster spec schema {schema!r}; expected {SPEC_SCHEMA!r}")
        fields = {key: value for key, value in data.items() if key != "schema"}
        try:
            raw_nodes = fields.pop("nodes")
            nodes = tuple(NodeSpec(**node) for node in raw_nodes)
            return cls(nodes=nodes, **fields)
        except (KeyError, TypeError) as failure:
            raise ClusterError(f"malformed cluster spec: {failure}") from None

    def save(self, path: str | Path) -> Path:
        """Write the spec as JSON to ``path`` (creating parent directories)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> ClusterSpec:
        """Read a spec written by :meth:`save`."""
        try:
            data = json.loads(Path(path).read_text())
        except OSError as failure:
            raise ClusterError(f"cannot read cluster spec {path}: {failure}") from None
        except ValueError as failure:
            raise ClusterError(f"cluster spec {path} is not valid JSON: {failure}") from None
        return cls.from_dict(data)


def free_localhost_ports(count: int) -> list[int]:
    """Ask the OS for ``count`` distinct free TCP ports on 127.0.0.1.

    All ``count`` sockets are bound *simultaneously* (then released), so the
    returned ports are pairwise distinct.  There is an inherent race between
    releasing a port and the node process re-binding it; in practice the
    window is milliseconds and a collision surfaces as the node's loud
    bind error, never as silent misbehaviour.
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def localhost_spec(
    n: int,
    f: int | None = None,
    base_port: int = 0,
    framing: str = "json",
    **overrides,
) -> ClusterSpec:
    """Build an n-node 127.0.0.1 cluster spec.

    ``f`` defaults to the largest threshold ``n`` can tolerate
    (``floor((n-1)/3)``).  ``base_port=0`` allocates free ports from the OS;
    a positive ``base_port`` uses the consecutive range starting there.
    Extra keyword arguments pass through to :class:`ClusterSpec`.
    """
    if n < 1:
        raise ClusterError("a cluster needs at least one node")
    if f is None:
        f = max_faults(n)
    ports = list(range(base_port, base_port + n)) if base_port else free_localhost_ports(n)
    nodes = tuple(NodeSpec(name=f"n{index}", host="127.0.0.1", port=port) for index, port in enumerate(ports))
    return ClusterSpec(nodes=nodes, f=f, framing=framing, **overrides)
