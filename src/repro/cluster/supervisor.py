"""The cluster supervisor: spawn, watch and stop the node OS processes.

:class:`Cluster` turns a :class:`~repro.cluster.spec.ClusterSpec` into real
processes: one ``python -m repro cluster node`` child per spec entry, each
with its stdout/stderr captured to ``<state>/logs/<name>.log``.  The state
directory (default ``.repro-cluster``) also holds the spec file the
children load and a ``state.json`` (node pids, supervisor pid) that lets
*other* processes — ``repro cluster status | client | down`` — find the
cluster without talking to the supervisor.

Bootstrap is fail-fast: :meth:`Cluster.start` polls both the children's
liveness and their status probes.  A child that dies during startup (the
canonical case: its port is already in use) aborts the whole bring-up —
the supervisor tears down the survivors and raises a
:class:`~repro.cluster.spec.ClusterError` quoting the dead node's log tail,
so a port collision is a loud one-line diagnosis, never a hang.

Shutdown mirrors the node contract: SIGTERM each child, wait for the
drain, SIGKILL stragglers past the deadline.  :meth:`Cluster.stop` returns
0 only if every node exited cleanly (exit code 0), which is exactly what
the CI smoke job asserts.  :meth:`Cluster.kill_node` /
:meth:`Cluster.restart_node` support the crash/recover demo in
``examples/cluster_service.py``; note a restarted replica rejoins with
*fresh* state — it counts against the spec's ``f`` budget, it is not state
transfer (see docs/operations.md).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import repro
from repro.cluster.client import probe_cluster_sync
from repro.cluster.spec import ClusterError, ClusterSpec

#: Schema tag of the state file other CLI processes read.
STATE_SCHEMA = "repro-cluster-state/v1"

#: Default state directory (relative to the caller's cwd).
DEFAULT_STATE_DIR = ".repro-cluster"


def _src_root() -> str:
    """The directory to put on the children's PYTHONPATH (contains ``repro``)."""
    return str(Path(repro.__file__).resolve().parent.parent)


class Cluster:
    """Supervise one multi-process cluster described by a spec."""

    def __init__(
        self,
        spec: ClusterSpec,
        state_dir: str | Path = DEFAULT_STATE_DIR,
        python: str = sys.executable,
    ) -> None:
        self.spec = spec
        self.state_dir = Path(state_dir)
        self.python = python
        self.procs: dict[str, subprocess.Popen] = {}
        self._spec_path = self.state_dir / "spec.json"

    # -- bring-up ---------------------------------------------------------------------

    def start(self, wait_ready: bool = True, timeout: float = 20.0) -> Cluster:
        """Spawn every node process (optionally waiting for readiness)."""
        if self.procs:
            raise ClusterError("cluster is already started")
        (self.state_dir / "logs").mkdir(parents=True, exist_ok=True)
        self.spec.save(self._spec_path)
        for node in self.spec.nodes:
            self._spawn(node.name)
        self._write_state()
        if wait_ready:
            try:
                self.wait_ready(timeout)
            except ClusterError:
                self.stop()
                raise
        return self

    def _spawn(self, name: str) -> None:
        env = os.environ.copy()
        src = _src_root()
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
        # Lets the node shut itself down if this supervisor is SIGKILLed
        # (SIGTERM is handled explicitly; SIGKILL cannot be).
        env["REPRO_CLUSTER_SUPERVISOR_PID"] = str(os.getpid())
        log_path = self.state_dir / "logs" / f"{name}.log"
        with open(log_path, "ab") as log:
            self.procs[name] = subprocess.Popen(
                [
                    self.python,
                    "-m",
                    "repro",
                    "cluster",
                    "node",
                    "--spec",
                    str(self._spec_path),
                    "--name",
                    name,
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )

    def _log_tail(self, name: str, lines: int = 5) -> str:
        path = self.state_dir / "logs" / f"{name}.log"
        try:
            content = path.read_text(errors="replace").strip().splitlines()
        except OSError:
            return "(no log)"
        return "\n".join(content[-lines:]) if content else "(empty log)"

    def wait_ready(self, timeout: float = 20.0) -> dict[str, dict]:
        """Block until every node probes ready; loud failure otherwise.

        Raises :class:`ClusterError` the moment any child exits during
        bring-up (quoting its log tail — a port collision lands here) or
        when the deadline passes with nodes still unready.
        """
        deadline = time.monotonic() + timeout
        statuses: dict[str, dict | None] = {}
        while time.monotonic() < deadline:
            dead = {name: proc.returncode for name, proc in self.procs.items() if proc.poll() is not None}
            if dead:
                details = "; ".join(
                    f"{name} exited {code}: {self._log_tail(name)}" for name, code in dead.items()
                )
                raise ClusterError(f"cluster bootstrap failed — {details}")
            statuses = probe_cluster_sync(self.spec, timeout=1.0)
            if all(status is not None and status.get("ready") for status in statuses.values()):
                return statuses  # type: ignore[return-value]
            time.sleep(0.05)
        unready = sorted(
            name for name, status in statuses.items() if not (status and status.get("ready"))
        )
        raise ClusterError(f"cluster not ready after {timeout:.0f}s; waiting on: {', '.join(unready) or '?'}")

    # -- observation ------------------------------------------------------------------

    def status(self) -> list[dict]:
        """One merged row per node: probe fields plus supervisor-side view."""
        probes = probe_cluster_sync(self.spec)
        rows = []
        for node in self.spec.nodes:
            proc = self.procs.get(node.name)
            probe = probes.get(node.name)
            row = {
                "node": node.name,
                "endpoint": node.endpoint,
                "alive": proc is not None and proc.poll() is None,
                "reachable": probe is not None,
            }
            if probe:
                row.update(
                    pid=probe.get("pid"),
                    ready=probe.get("ready"),
                    state=probe.get("state"),
                    decisions=probe.get("decisions"),
                    clients=len(probe.get("clients") or ()),
                )
            rows.append(row)
        return rows

    # -- shutdown and faults ----------------------------------------------------------

    def stop(self, timeout: float = 8.0) -> int:
        """SIGTERM every node, wait for the drain, SIGKILL stragglers.

        Returns 0 iff every node exited 0 (a clean cluster-wide drain).
        """
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + timeout
        code = 0
        for name, proc in self.procs.items():
            remaining = max(0.05, deadline - time.monotonic())
            try:
                proc.wait(remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
            if proc.returncode != 0:
                code = 1
        self.procs.clear()
        try:
            (self.state_dir / "state.json").unlink()
        except OSError:
            pass
        return code

    def kill_node(self, name: str) -> None:
        """Crash one node hard (SIGKILL) — the fault-injection primitive."""
        proc = self.procs.get(name)
        if proc is None:
            raise ClusterError(f"unknown or never-started node {name!r}")
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    def restart_node(self, name: str, wait_ready: bool = True, timeout: float = 20.0) -> None:
        """Start a fresh process for a dead node (amnesiac rejoin)."""
        self.spec.node(name)  # loud on unknown names
        proc = self.procs.get(name)
        if proc is not None and proc.poll() is None:
            raise ClusterError(f"node {name!r} is still running; kill it first")
        self._spawn(name)
        self._write_state()
        if wait_ready:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                status = probe_cluster_sync(self.spec).get(name)
                if status is not None and status.get("ready"):
                    return
                time.sleep(0.05)
            raise ClusterError(f"restarted node {name!r} not ready after {timeout:.0f}s")

    # -- state file (for out-of-process CLI subcommands) ------------------------------

    def _write_state(self) -> None:
        payload = {
            "schema": STATE_SCHEMA,
            "supervisor_pid": os.getpid(),
            "spec_path": str(self._spec_path),
            "nodes": {name: proc.pid for name, proc in self.procs.items()},
        }
        (self.state_dir / "state.json").write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def __enter__(self) -> Cluster:
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def load_state(state_dir: str | Path) -> tuple[ClusterSpec, dict]:
    """Read ``<state_dir>/state.json`` + the spec it points at.

    Used by ``repro cluster status|client|down`` running as separate
    processes from the supervisor.
    """
    state_path = Path(state_dir) / "state.json"
    try:
        state = json.loads(state_path.read_text())
    except OSError:
        raise ClusterError(
            f"no cluster state at {state_path} — is a cluster up with --state {state_dir}?"
        ) from None
    except ValueError as failure:
        raise ClusterError(f"corrupt cluster state {state_path}: {failure}") from None
    if state.get("schema") != STATE_SCHEMA:
        raise ClusterError(f"unsupported cluster state schema {state.get('schema')!r}")
    spec = ClusterSpec.load(state["spec_path"])
    return spec, state
