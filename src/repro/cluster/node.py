"""One cluster node: an RSM replica running as its own OS process.

``python -m repro cluster node --spec <file> --name <node>`` runs exactly
this module: it binds the node's configured TCP endpoint, dials a
persistent :class:`~repro.cluster.protocol.FrameLink` to every peer in the
spec's static seed list (connect-with-backoff, so start order never
matters), and hosts one :class:`~repro.rsm.replica.Replica` core on a
:class:`~repro.cluster.runtime.CoreHost`.  Everything the replica *does*
is still the sans-I/O effect vocabulary — this module only moves frames.

Lifecycle:

* **bind failure is loud** — a port already in use prints a recognizable
  one-line error to stderr and exits non-zero immediately; the supervisor
  turns that into a bootstrap failure instead of a hang.
* **readiness** — a node reports ``ready`` once its server is bound and
  every outbound peer link is connected; ``status`` frames answer the
  probe at any time (see ``docs/operations.md`` for the fields).
* **client replies survive reconnects** — replies to a client whose
  connection is gone are buffered per client id and flushed the moment a
  connection re-registers that id (every ``client`` frame registers its
  connection), so a retrying client never loses a ``DecideNotice`` to a
  dropped socket.  The Replica core deduplicates notices per
  ``(client, command)``, which makes this buffering load-bearing.
* **torn handshakes stay local** — a connection that sends garbage (wire
  errors, unknown frame kinds, missing fields) is dropped with a stderr
  note; the server and every other connection keep running.
* **SIGTERM drains** — on SIGTERM/SIGINT the node keeps processing until
  its sockets have been quiet for ``spec.drain_idle_s`` seconds (in-flight
  decisions complete and their notices flush) or ``spec.drain_max_s``
  elapses, then exits 0.  That is what makes a cluster-wide shutdown leave
  every completed client operation with a clean, auditable history.
"""

from __future__ import annotations

import asyncio
import faulthandler
import os
import signal
import sys
import time

from repro.cluster.protocol import (
    K_CLIENT,
    K_HELLO,
    K_MSG,
    K_STATUS,
    K_STATUS_REPLY,
    FrameLink,
    frame_field,
    frame_kind,
    hello_frame,
    msg_frame,
    reply_frame,
)
from repro.cluster.runtime import CoreHost
from repro.cluster.spec import ClusterError, ClusterSpec
from repro.engine.wire import WireError, get_codec
from repro.rsm.replica import Replica


class NodeServer:
    """The asyncio server wrapping one Replica core."""

    def __init__(self, spec: ClusterSpec, name: str) -> None:
        self.spec = spec
        self.me = spec.node(name)
        self.codec = get_codec(spec.framing)
        members = spec.member_names()
        self.core = Replica(name, members, spec.f, max_rounds=spec.max_rounds)
        self.host = CoreHost(
            self.core, members=members, send=self._route, time_scale=spec.time_scale
        )
        #: Outbound links to every peer, by node name.
        self.peers: dict[str, FrameLink] = {}
        #: Peers whose hello we have seen on an inbound connection.
        self.inbound_peers: set[str] = set()
        #: Client id -> the connection to reply on (None after a disconnect).
        self.clients: dict[str, asyncio.StreamWriter | None] = {}
        #: Encoded reply frames waiting for a client to (re)connect.
        self._client_backlog: dict[str, list[bytes]] = {}
        self._server: asyncio.Server | None = None
        self._stopping = asyncio.Event()
        self._started = time.monotonic()
        self._last_activity = time.monotonic()
        #: Incarnation token answered to peer hellos: a restarted node gets
        #: a new one, so peers drop the dead incarnation's buffered traffic.
        self._boot = f"{os.getpid()}.{self._started:.6f}"

    # -- the process entry point -----------------------------------------------------

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT, then drain; the process exit code."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, self._stopping.set)
        watchdog = self._start_supervisor_watchdog(loop)
        try:
            self._server = await asyncio.start_server(
                self._serve_connection, self.me.host, self.me.port
            )
        except OSError as failure:
            print(
                f"cluster node {self.me.name}: cannot listen on {self.me.endpoint}: {failure}",
                file=sys.stderr,
                flush=True,
            )
            return 1
        for node in self.spec.nodes:
            if node.name == self.me.name:
                continue
            link = FrameLink(
                node.host,
                node.port,
                self.codec,
                hello=hello_frame(self.me.name, boot=self._boot),
                expect_hello=True,
            )
            link.start()
            self.peers[node.name] = link
        self.host.start()
        print(
            f"cluster node {self.me.name}: pid {os.getpid()} listening on {self.me.endpoint}",
            flush=True,
        )
        try:
            await self._stopping.wait()
            return await self._drain()
        finally:
            if watchdog is not None:
                watchdog.cancel()
            self._server.close()
            await self._server.wait_closed()
            for link in self.peers.values():
                await link.close()

    def _start_supervisor_watchdog(self, loop: asyncio.AbstractEventLoop) -> asyncio.Task | None:
        """Shut down if the supervising process dies without SIGTERMing us.

        The supervisor cannot intercept its own SIGKILL, so a hard-killed
        ``cluster up`` would otherwise orphan every node process.  The
        supervisor passes its pid in ``REPRO_CLUSTER_SUPERVISOR_PID``; when
        that pid stops existing, the node drains and exits on its own.
        """
        raw = os.environ.get("REPRO_CLUSTER_SUPERVISOR_PID")
        if not raw or not raw.isdigit():
            return None
        supervisor = int(raw)

        async def watch() -> None:
            while True:
                await asyncio.sleep(0.5)
                try:
                    os.kill(supervisor, 0)
                except (OSError, ProcessLookupError):
                    print(
                        f"cluster node {self.me.name}: supervisor pid {supervisor} is gone, "
                        "shutting down",
                        file=sys.stderr,
                        flush=True,
                    )
                    self._stopping.set()
                    return

        return loop.create_task(watch())

    @property
    def ready(self) -> bool:
        """Bound and connected to every peer in the seed list."""
        return self._server is not None and all(link.connected for link in self.peers.values())

    # -- effect routing (CoreHost -> sockets) -----------------------------------------

    def _route(self, dest, payload) -> None:
        self._last_activity = time.monotonic()
        link = self.peers.get(dest)
        if link is not None:
            link.send(msg_frame(self.me.name, payload))
            return
        # Anything that is not a member is a client the replica heard from.
        data = self.codec.encode_frame(reply_frame(dest, self.me.name, payload))
        writer = self.clients.get(dest)
        if writer is not None and not writer.is_closing():
            writer.write(data)
        else:
            self._client_backlog.setdefault(dest, []).append(data)

    # -- inbound connections (peers, clients, probes) ---------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            await self._serve_frames(reader, writer)
        except asyncio.CancelledError:
            # Loop teardown after drain: exit cleanly instead of letting the
            # cancellation surface through the stream protocol's callback.
            pass
        finally:
            for client, registered in list(self.clients.items()):
                if registered is writer:
                    self.clients[client] = None
            writer.close()

    async def _serve_frames(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    frame = await self.codec.read_frame(reader)
                except asyncio.IncompleteReadError:
                    break  # clean close
                self._last_activity = time.monotonic()
                kind = frame_kind(frame)
                if kind == K_MSG:
                    self.host.deliver(frame_field(frame, "sender"), frame_field(frame, "payload"))
                elif kind == K_CLIENT:
                    self._handle_client_frame(frame, writer)
                elif kind == K_HELLO:
                    self.inbound_peers.add(frame_field(frame, "node"))
                    # Answer with our incarnation token so the dialing link
                    # can tell a restarted process from a reconnect.
                    writer.write(self.codec.encode_frame(hello_frame(self.me.name, boot=self._boot)))
                    await writer.drain()
                elif kind == K_STATUS:
                    writer.write(self.codec.encode_frame(self.status()))
                    await writer.drain()
                else:
                    raise ClusterError(f"unexpected frame kind {kind!r} on a node socket")
        except (WireError, ClusterError) as failure:
            # A torn or foreign handshake: drop this connection, keep serving.
            print(
                f"cluster node {self.me.name}: dropping connection: {failure}",
                file=sys.stderr,
                flush=True,
            )
        except (ConnectionError, OSError):
            pass

    def _handle_client_frame(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        client = frame_field(frame, "client")
        if self.clients.get(client) is not writer:
            # (Re)registration: this connection is now the reply channel.
            self.clients[client] = writer
            for data in self._client_backlog.pop(client, []):
                writer.write(data)
        self.host.deliver(client, frame_field(frame, "payload"))

    # -- observability ----------------------------------------------------------------

    def status(self) -> dict:
        """The ``status_reply`` frame body (see docs/operations.md)."""
        return {
            "kind": K_STATUS_REPLY,
            "node": self.me.name,
            "pid": os.getpid(),
            "ready": self.ready,
            "draining": self._stopping.is_set(),
            "state": self.core.state,
            "round": self.core.round,
            "decisions": len(self.core.decisions),
            "admitted": len(self.core.admitted_commands),
            "peers_out": {name: link.connected for name, link in self.peers.items()},
            "peers_in": sorted(self.inbound_peers),
            "clients": sorted(
                client for client, writer in self.clients.items() if writer is not None
            ),
            "uptime_s": round(time.monotonic() - self._started, 3),
        }

    # -- graceful shutdown ------------------------------------------------------------

    async def _drain(self) -> int:
        """Keep serving until in-flight work settles, then exit cleanly.

        "Quiet" means no frame has arrived or been routed for
        ``drain_idle_s`` seconds *and* every peer link's buffer is flushed;
        ``drain_max_s`` bounds the wait so a wedged peer cannot hold the
        process hostage.
        """
        deadline = time.monotonic() + self.spec.drain_max_s
        while time.monotonic() < deadline:
            quiet_for = time.monotonic() - self._last_activity
            backlogged = any(link.pending_bytes for link in self.peers.values())
            if not backlogged and quiet_for >= self.spec.drain_idle_s:
                break
            await asyncio.sleep(0.02)
        print(f"cluster node {self.me.name}: drained, exiting", flush=True)
        return 0


def run_node(spec: ClusterSpec, name: str) -> int:
    """Blocking entry point for the node process; returns its exit code."""
    # Operational escape hatch: `kill -USR1 <node pid>` dumps every thread's
    # Python stack to stderr (the node's log file) without stopping it.
    faulthandler.register(signal.SIGUSR1, all_threads=True)
    return asyncio.run(NodeServer(spec, name).run())
