"""String-encoded scenario axes: schedulers and fault plans as data.

The orchestrator persists every job spec as JSON and re-executes it in a
worker process, so the adversarial knobs of the kernel — which
:class:`~repro.sim.scheduler.Scheduler` drives delivery and which
:class:`~repro.sim.faults.FaultPlan` scripts the environment — must be
expressible as plain strings.  This module is the single parser for those
strings; the scenario builders in :mod:`repro.harness.workloads` accept
either the objects or the specs and resolve the latter here.

Scheduler specs (``parse_scheduler``)::

    ""                         inherit the builder's delay model (no override)
    delay                      same (explicit)
    random                     RandomScheduler() with the default spread
    random:spread=5            RandomScheduler(spread=5.0)
    worst-case                 WorstCaseScheduler starving every link of p0
    worst-case:victims=p0+p2   starve all links touching p0 and p2
    worst-case:victims=quorum  starve the quorum-critical link set computed
                               from the membership (n, f) — enough processes
                               that no ack quorum can form over fast links
                               only (needs ``pids``/``f``; builders pass them)
    worst-case:starve=100,fast=1,victims=p1

Fault-plan specs (``parse_fault_plan``) are resolved against a concrete
membership, since group membership and crash targets depend on the cluster
size.  Terms are joined with ``+``; crash targets are indices into the
*correct* membership (modulo its size) so one spec string scales across
cluster sizes in a sweep::

    ""                          no faults
    none                        same (explicit)
    churn                       the E12 preset: a half/half partition at
                                3..18 plus two crash/recover cycles
    partition@3-18              split the membership into two halves
    crash:1@20-30               crash the 2nd correct process at 20, recover at 30
    partition@3-18+crash:0@20-30   compose terms

Every parse error raises :class:`ValueError` with the offending spec, so a
typo'd axis fails sweep expansion up front instead of inside a worker.
"""

from __future__ import annotations
from collections.abc import Hashable, Sequence

from repro.sim.faults import FaultPlan
from repro.sim.scheduler import RandomScheduler, Scheduler, WorstCaseScheduler

#: Spec strings meaning "no scheduler override".
_NO_SCHEDULER = ("", "delay", "default")
#: Spec strings meaning "no fault plan".
_NO_FAULT_PLAN = ("", "none")

#: The churn preset mirrors E12 / ``examples/partition_churn.py``: keep the
#: timing constants in sync with ``run_partition_churn_experiment``.
CHURN_PRESET = "partition@3-18+crash:1@20-30+crash:-1@32-42"


def _parse_options(text: str, spec: str) -> dict[str, str]:
    options: dict[str, str] = {}
    for part in text.split(","):
        if not part:
            continue
        name, separator, value = part.partition("=")
        if not separator or not name or not value:
            raise ValueError(f"bad scheduler option {part!r} in {spec!r} (expected key=value)")
        options[name] = value
    return options


def _positive_float(value: str, what: str, spec: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise ValueError(f"bad {what} {value!r} in {spec!r}") from None
    if not number > 0:
        raise ValueError(f"{what} must be positive in {spec!r}, got {number!r}")
    return number


def parse_scheduler(
    spec: str | None,
    pids: Sequence[Hashable] | None = None,
    f: int | None = None,
) -> Scheduler | None:
    """Parse a scheduler spec; ``None`` means "keep the builder's delay model".

    ``pids`` and ``f`` are the concrete membership the spec is resolved
    against; they are only required by membership-dependent specs
    (``worst-case:victims=quorum``), so axis *validation* can still run
    membership-free for the fixed-victim forms.
    """
    if spec is None:
        return None
    spec = spec.strip()
    if spec in _NO_SCHEDULER:
        return None
    kind, _, rest = spec.partition(":")
    options = _parse_options(rest, spec)
    if kind == "random":
        spread = _positive_float(options.pop("spread", "10"), "spread", spec)
        if options:
            raise ValueError(f"unknown random-scheduler options {sorted(options)} in {spec!r}")
        return RandomScheduler(spread=spread)
    if kind == "worst-case":
        victims_text = options.pop("victims", "p0")
        starve = _positive_float(options.pop("starve", "200"), "starve delay", spec)
        fast = _positive_float(options.pop("fast", "0.5"), "fast delay", spec)
        if options:
            raise ValueError(f"unknown worst-case options {sorted(options)} in {spec!r}")
        if victims_text == "quorum":
            if pids is None or f is None:
                raise ValueError(
                    f"{spec!r} computes its starved links from the membership; "
                    "resolve it with pids= and f= (the scenario builders do)"
                )
            return WorstCaseScheduler.quorum_critical(
                pids, f, starve_delay=starve, fast_delay=fast
            )
        victims = tuple(v for v in victims_text.split("+") if v)
        if not victims:
            raise ValueError(f"worst-case scheduler needs at least one victim in {spec!r}")
        return WorstCaseScheduler(victims=victims, starve_delay=starve, fast_delay=fast)
    raise ValueError(
        f"unknown scheduler spec {spec!r} (expected delay, random[:spread=S] "
        "or worst-case[:victims=p0+p1|quorum,starve=S,fast=F])"
    )


def _parse_window(text: str, term: str) -> tuple[float, float]:
    start_text, separator, end_text = text.partition("-")
    if not separator:
        raise ValueError(f"fault term {term!r} needs a START-END window, got {text!r}")
    try:
        start, end = float(start_text), float(end_text)
    except ValueError:
        raise ValueError(f"bad time window {text!r} in fault term {term!r}") from None
    if not 0 <= start < end:
        raise ValueError(f"fault window must satisfy 0 <= start < end, got {text!r} in {term!r}")
    return start, end


def parse_fault_plan(
    spec: str | None,
    pids: Sequence[Hashable],
    correct: Sequence[Hashable],
) -> FaultPlan | None:
    """Resolve a fault-plan spec against a concrete membership.

    ``pids`` is the full membership (partition groups are halves of it);
    ``correct`` are the correct processes (crash targets index into them, so
    Byzantine slots are never double-faulted).
    """
    if spec is None:
        return None
    spec = spec.strip()
    if spec in _NO_FAULT_PLAN:
        return None
    if spec == "churn":
        spec = CHURN_PRESET
    if not correct:
        raise ValueError("cannot resolve a fault plan without correct processes")
    plan = FaultPlan()
    for term in spec.split("+"):
        term = term.strip()
        if not term:
            raise ValueError(f"empty fault term in {spec!r}")
        head, _, window_text = term.partition("@")
        if not window_text:
            raise ValueError(f"fault term {term!r} needs an @START-END window")
        start, end = _parse_window(window_text, term)
        kind, _, argument = head.partition(":")
        if kind == "partition":
            if argument:
                raise ValueError(f"partition takes no argument, got {term!r}")
            half = max(1, len(pids) // 2)
            if len(pids) < 2:
                raise ValueError("a partition needs at least two processes")
            plan.partition(pids[:half], pids[half:], at=start, heal_at=end)
        elif kind == "crash":
            try:
                index = int(argument)
            except ValueError:
                raise ValueError(f"crash target must be an integer index, got {term!r}") from None
            plan.crash(correct[index % len(correct)], at=start, recover_at=end)
        else:
            raise ValueError(f"unknown fault term {term!r} (expected partition@A-B or crash:IDX@A-B)")
    return plan


def scheduler_spec_is_adversarial(spec: str | None) -> bool:
    """Whether ``spec`` names a schedule that may starve links for a long time."""
    return bool(spec) and spec.strip().startswith("worst-case")


def describe_axes(scheduler: str | None, fault_plan: str | None) -> str:
    """One-line human-readable summary used in reports and replay hints."""
    parts: list[str] = []
    if scheduler and scheduler.strip() not in _NO_SCHEDULER:
        parts.append(f"scheduler={scheduler}")
    if fault_plan and fault_plan.strip() not in _NO_FAULT_PLAN:
        parts.append(f"fault_plan={fault_plan}")
    return ", ".join(parts) or "default schedule, no faults"
