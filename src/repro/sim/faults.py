"""FaultPlan: declarative crash/partition scripts for a simulation run.

A :class:`FaultPlan` is a reusable, inspectable description of *when the
environment misbehaves*: which processes crash and recover when, which
partitions open and heal when, plus arbitrary timed injections.  Scenario
builders take a plan and apply it to the network before the run starts, so
an experiment's fault script lives next to its workload description instead
of being smeared across hand-rolled delay models.

Plans are built fluently and are order-independent (every action carries its
absolute time; the kernel orders them)::

    plan = (
        FaultPlan()
        .partition(["p0", "p1"], ["p2", "p3"], at=5.0, heal_at=20.0)
        .crash("p1", at=25.0, recover_at=35.0)
        .crash("p2", at=40.0, recover_at=50.0)
    )
    run_gwts_scenario(n=4, f=1, fault_plan=plan, ...)

Crash semantics: a crashed process stops executing and everything addressed
to it (messages *and* timers) is held and handed over on recovery — channels
stay reliable, so a crash is indistinguishable from a very slow process and
the paper's asynchronous liveness arguments keep applying.
"""

from __future__ import annotations
from collections.abc import Callable, Hashable, Iterable

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.sim.kernel import invalid_time

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.kernel_backend import KernelEngine


def validate_partition_groups(groups: tuple[frozenset, ...]) -> None:
    """Reject partitions with fewer than two groups or overlapping groups.

    Shared by :meth:`FaultPlan.partition` (build time) and the engine
    backends' ``start_partition`` (schedule time) so the entry points cannot
    drift apart.
    """
    if len(groups) < 2:
        raise ValueError("a partition needs at least two groups")
    seen: set = set()
    for group in groups:
        if not group:
            raise ValueError("partition groups must be non-empty")
        overlap = seen & group
        if overlap:
            raise ValueError(
                f"partition groups overlap on {sorted(map(str, overlap))}"
            )
        seen |= group


@dataclass(frozen=True)
class FaultAction:
    """One scripted action: ``kind`` at absolute simulated time ``at``."""

    at: float
    kind: str  # "crash" | "recover" | "partition" | "heal" | "inject"
    pid: Hashable | None = None
    groups: tuple[frozenset, ...] = ()
    fn: Callable[..., Any] | None = None
    label: str = ""


class FaultPlan:
    """A declarative, chainable script of crashes, partitions and injections."""

    def __init__(self) -> None:
        self.actions: list[FaultAction] = []

    # -- builders (all chainable) -------------------------------------------------

    def crash(
        self, pid: Hashable, at: float, recover_at: float | None = None
    ) -> FaultPlan:
        """Crash ``pid`` at time ``at`` (optionally scheduling its recovery)."""
        self._check_time(at)
        if recover_at is not None and recover_at <= at:
            raise ValueError(
                f"recover_at ({recover_at!r}) must be after the crash at {at!r}"
            )
        self.actions.append(FaultAction(at=at, kind="crash", pid=pid))
        if recover_at is not None:
            self.recover(pid, at=recover_at)
        return self

    def recover(self, pid: Hashable, at: float) -> FaultPlan:
        """Recover ``pid`` at time ``at``; held messages/timers are released."""
        self._check_time(at)
        self.actions.append(FaultAction(at=at, kind="recover", pid=pid))
        return self

    def partition(
        self,
        *groups: Iterable[Hashable],
        at: float,
        heal_at: float | None = None,
    ) -> FaultPlan:
        """Split the membership into ``groups`` at ``at`` (optionally healing).

        Pids not listed in any group keep full connectivity, so a partial
        partition (isolate one process from two cliques, say) is one call.
        """
        self._check_time(at)
        if heal_at is not None and heal_at <= at:
            raise ValueError(
                f"heal_at ({heal_at!r}) must be after the partition at {at!r}"
            )
        frozen = tuple(frozenset(group) for group in groups)
        validate_partition_groups(frozen)
        self.actions.append(FaultAction(at=at, kind="partition", groups=frozen))
        if heal_at is not None:
            self.heal(at=heal_at)
        return self

    def heal(self, at: float) -> FaultPlan:
        """Dissolve the active partition at ``at``; held traffic is released."""
        self._check_time(at)
        self.actions.append(FaultAction(at=at, kind="heal"))
        return self

    def inject(
        self, at: float, fn: Callable[..., Any], label: str = "inject"
    ) -> FaultPlan:
        """Run ``fn(network)`` at ``at`` — the escape hatch for custom scripts."""
        self._check_time(at)
        self.actions.append(FaultAction(at=at, kind="inject", fn=fn, label=label))
        return self

    # -- application ---------------------------------------------------------------

    def apply(self, engine: KernelEngine) -> FaultPlan:
        """Schedule every action on ``engine`` (any backend works).

        Apply a plan once per run: each call schedules the full action list
        again (duplicate crash/partition events are absorbed by the
        engine's idempotence guards, but ``inject`` callbacks would run
        once per application).
        """
        for action in self.actions:
            if action.kind == "crash":
                engine.crash_node(action.pid, at=action.at)
            elif action.kind == "recover":
                engine.recover_node(action.pid, at=action.at)
            elif action.kind == "partition":
                engine.start_partition(*action.groups, at=action.at)
            elif action.kind == "heal":
                engine.heal_partition(at=action.at)
            elif action.kind == "inject":
                engine.inject(action.fn, at=action.at, label=action.label)
            else:  # pragma: no cover - builder methods prevent this
                raise ValueError(f"unknown fault action {action.kind!r}")
        return self

    # -- introspection ---------------------------------------------------------------

    def describe(self) -> str:
        """One-line summary for experiment reports."""
        counts: dict = {}
        for action in self.actions:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        inner = ", ".join(f"{kind}×{count}" for kind, count in sorted(counts.items()))
        return f"FaultPlan({inner or 'empty'})"

    def __len__(self) -> int:
        return len(self.actions)

    @staticmethod
    def _check_time(at: float) -> None:
        if invalid_time(at):
            raise ValueError(f"invalid action time {at!r}")
