"""The discrete-event simulation kernel: one time-ordered queue of typed events.

:class:`SimKernel` owns the three things every discrete-event simulation
needs — the event heap, the simulated clock, and the seeded RNG — plus the
fault state (crashed processes, the active partition) that decides whether a
popped event may take effect now or must be *held*.

The kernel is engine-agnostic: it never looks inside an envelope and never
calls protocol code.  :class:`repro.engine.KernelEngine` drives it (pop an
event, dispatch by type, consult ``is_crashed`` / ``link_blocked``) and
applies the resulting core effects.

Determinism: the heap is ordered by ``(time, seq)`` where ``seq`` is a
monotone schedule counter, so ties are broken by schedule order and a run is
a pure function of (nodes, seed, scheduler, fault plan).  Held events are
re-scheduled in the order they were held, preserving per-link FIFO-ness of
the release.
"""

from __future__ import annotations

import heapq
import random
from collections.abc import Hashable

from repro.sim.events import Event, MessageDelivery


def invalid_time(value: float) -> bool:
    """True for negative, NaN or infinite time/delay values.

    The single definition of temporal validity, shared by the kernel, the
    network's submit/timer paths and :class:`~repro.sim.faults.FaultPlan` so
    the entry points cannot drift apart.
    """
    return value < 0.0 or value != value or value == float("inf")


class SimKernel:
    """Time-ordered typed-event queue with crash/partition fault state."""

    __slots__ = (
        "_queue",
        "_seq",
        "_now",
        "rng",
        "crashed",
        "partition_groups",
        "_held_for_node",
        "_held_for_partition",
        "pending_messages",
        "events_processed",
    )

    def __init__(self, seed: int = 0) -> None:
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        #: The run's seeded RNG (shared with the scheduler / delay models).
        self.rng = random.Random(seed)
        #: Processes currently down (between NodeCrash and NodeRecover).
        self.crashed: set = set()
        #: Active partition (tuple of frozensets), or () when fully connected.
        self.partition_groups: tuple[frozenset, ...] = ()
        #: Events held because their target process is down.
        self._held_for_node: dict[Hashable, list[Event]] = {}
        #: Deliveries held because they cross the active partition.
        self._held_for_partition: list[Event] = []
        #: Messages scheduled but not yet delivered (including held ones).
        #: Maintained by the network, not by :meth:`schedule`, so that a
        #: held-and-rescheduled delivery is not double-counted.
        self.pending_messages = 0
        #: Total events processed (for run caps and throughput reporting).
        self.events_processed = 0

    # -- clock & queue ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def __len__(self) -> int:
        """Events still in the heap (including lazily-cancelled ones)."""
        return len(self._queue)

    def schedule(self, event: Event, delay: float = 0.0) -> Event:
        """Schedule ``event`` to fire ``delay`` time units from now."""
        return self.schedule_at(event, self._now + delay)

    def schedule_at(self, event: Event, time: float) -> Event:
        """Schedule ``event`` at absolute simulated time ``time``.

        A cancelled event stays cancelled — scheduling does not revive it
        (a timer cancelled while parked for a crashed node must not fire
        after recovery).
        """
        if time < self._now or invalid_time(time):
            raise ValueError(f"invalid event time {time!r} (now={self._now!r})")
        event.time = time
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, event))
        return event

    def pop(self) -> Event | None:
        """Remove and return the next live event, advancing the clock.

        Cancelled events are skipped (lazy deletion).  Returns ``None`` when
        the queue is exhausted.
        """
        queue = self._queue
        while queue:
            time, _seq, event = heapq.heappop(queue)
            if event.cancelled:
                if type(event) is MessageDelivery:
                    self.pending_messages -= 1
                continue
            if time > self._now:
                self._now = time
            self.events_processed += 1
            return event
        return None

    # -- fault state --------------------------------------------------------------

    def is_crashed(self, pid: Hashable) -> bool:
        """Whether ``pid`` is currently down."""
        return pid in self.crashed

    def link_blocked(self, a: Hashable, b: Hashable) -> bool:
        """Whether the active partition separates ``a`` and ``b``.

        Blocked iff both endpoints belong to (different) partition groups; a
        pid not listed in any group keeps full connectivity.
        """
        groups = self.partition_groups
        if not groups:
            return False
        group_a = group_b = -1
        for index, group in enumerate(groups):
            if a in group:
                group_a = index
            if b in group:
                group_b = index
        return group_a >= 0 and group_b >= 0 and group_a != group_b

    def hold_for_node(self, pid: Hashable, event: Event) -> None:
        """Park ``event`` until ``pid`` recovers (reliable redelivery)."""
        self._held_for_node.setdefault(pid, []).append(event)

    def hold_for_partition(self, event: Event) -> None:
        """Park ``event`` until the partition heals (reliable redelivery)."""
        self._held_for_partition.append(event)

    def held_count(self) -> int:
        """Events currently parked by crash or partition state."""
        return len(self._held_for_partition) + sum(
            len(events) for events in self._held_for_node.values()
        )

    def apply_crash(self, pid: Hashable) -> None:
        """Mark ``pid`` down (idempotent)."""
        self.crashed.add(pid)

    def apply_recover(self, pid: Hashable) -> None:
        """Mark ``pid`` up and re-schedule everything held for it, in order.

        Events cancelled while parked (e.g. a timer whose owner's operation
        completed another way) are dropped, not revived.
        """
        self.crashed.discard(pid)
        for event in self._held_for_node.pop(pid, []):
            if event.cancelled:
                if type(event) is MessageDelivery:
                    self.pending_messages -= 1
                continue
            self.schedule(event, 0.0)

    def apply_partition(self, groups: tuple[frozenset, ...]) -> None:
        """Install ``groups`` as the active partition (replaces any previous).

        Traffic parked by the previous partition is re-scheduled so the new
        topology re-evaluates it (it may now be deliverable — or not).
        """
        self.partition_groups = tuple(frozenset(group) for group in groups)
        self._release_partition_holds()

    def apply_heal(self) -> None:
        """Dissolve the partition and release all parked cross-traffic."""
        self.partition_groups = ()
        self._release_partition_holds()

    def _release_partition_holds(self) -> None:
        held, self._held_for_partition = self._held_for_partition, []
        for event in held:
            if event.cancelled:
                if type(event) is MessageDelivery:
                    self.pending_messages -= 1
                continue
            self.schedule(event, 0.0)
