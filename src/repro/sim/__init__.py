"""Discrete-event simulation kernel: typed events, schedulers, fault plans.

This package is the machinery under :class:`repro.engine.KernelEngine`: a
single time-ordered queue of typed events (:mod:`repro.sim.events`), a
pluggable scheduling policy deciding message delays
(:mod:`repro.sim.scheduler`), and a declarative fault-script API
(:mod:`repro.sim.faults`).  The kernel never calls protocol code — the
engine backends pop its events, dispatch them to sans-I/O protocol cores
and apply the resulting effects.
"""

from repro.sim.axes import describe_axes, parse_fault_plan, parse_scheduler
from repro.sim.events import (
    Event,
    Inject,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    PartitionHeal,
    PartitionStart,
    Timer,
)
from repro.sim.faults import FaultAction, FaultPlan
from repro.sim.kernel import SimKernel
from repro.sim.scheduler import DelayModelScheduler, RandomScheduler, Scheduler, WorstCaseScheduler

__all__ = [
    "Event",
    "MessageDelivery",
    "Timer",
    "NodeCrash",
    "NodeRecover",
    "PartitionStart",
    "PartitionHeal",
    "Inject",
    "SimKernel",
    "Scheduler",
    "DelayModelScheduler",
    "RandomScheduler",
    "WorstCaseScheduler",
    "FaultAction",
    "FaultPlan",
    "parse_scheduler",
    "parse_fault_plan",
    "describe_axes",
]
