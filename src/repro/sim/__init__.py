"""Discrete-event simulation kernel: typed events, schedulers, fault plans.

This package is the engine under :mod:`repro.transport`: a single
time-ordered queue of typed events (:mod:`repro.sim.events`), a pluggable
scheduling policy deciding message delays (:mod:`repro.sim.scheduler`), and
a declarative fault-script API (:mod:`repro.sim.faults`).  The seed's
``Network`` / ``SimulationRuntime`` survive unchanged as thin shims over
:class:`SimKernel`, so every seed call site keeps working while crash
churn, partitions, timers and adversarial schedules become first-class.
"""

from repro.sim.axes import describe_axes, parse_fault_plan, parse_scheduler
from repro.sim.events import (
    Event,
    Inject,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    PartitionHeal,
    PartitionStart,
    Timer,
)
from repro.sim.faults import FaultAction, FaultPlan
from repro.sim.kernel import SimKernel
from repro.sim.scheduler import (
    DelayModelScheduler,
    RandomScheduler,
    Scheduler,
    WorstCaseScheduler,
)

__all__ = [
    "Event",
    "MessageDelivery",
    "Timer",
    "NodeCrash",
    "NodeRecover",
    "PartitionStart",
    "PartitionHeal",
    "Inject",
    "SimKernel",
    "Scheduler",
    "DelayModelScheduler",
    "RandomScheduler",
    "WorstCaseScheduler",
    "FaultAction",
    "FaultPlan",
    "parse_scheduler",
    "parse_fault_plan",
    "describe_axes",
]
