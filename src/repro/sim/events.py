"""Typed events of the discrete-event simulation kernel.

The seed reproduction could simulate exactly one kind of event — message
delivery.  The kernel generalises that to a single time-ordered queue of
*typed* events so whole scenario families become expressible:

* :class:`MessageDelivery` — an engine envelope reaching its destination
  (the only event the seed had);
* :class:`Timer` — a process-local alarm (timeout-driven client retries,
  timed Byzantine behaviour switches);
* :class:`NodeCrash` / :class:`NodeRecover` — crash/recovery churn.  A
  crashed process stops executing; messages and timers addressed to it are
  held by the kernel and handed over on recovery (channels stay reliable,
  which keeps a crash indistinguishable from a very slow process — exactly
  the asynchronous model's power);
* :class:`PartitionStart` / :class:`PartitionHeal` — network partitions.
  Traffic crossing partition groups is held in flight until the heal
  (again: delayed, never lost);
* :class:`Inject` — an arbitrary scripted callback, the escape hatch for
  experiment-specific actions (flip a flag, record a probe, mutate state).

Events are deliberately tiny ``__slots__`` classes: the kernel pushes
hundreds of thousands of them through the queue in the throughput
benchmarks, so no dicts, no dataclass machinery on the hot path.
"""

from __future__ import annotations
from collections.abc import Callable, Hashable

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.envelope import Envelope


class Event:
    """Base class for everything the kernel can schedule.

    ``time`` is stamped by the kernel when the event is scheduled;
    ``cancelled`` events stay in the heap but are skipped (lazy deletion —
    O(1) cancel, no heap surgery).
    """

    __slots__ = ("time", "cancelled")

    def __init__(self) -> None:
        self.time: float = 0.0
        self.cancelled: bool = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it surfaces."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} t={self.time:.3f}>"


class MessageDelivery(Event):
    """An envelope reaching its destination process."""

    __slots__ = ("envelope",)

    def __init__(self, envelope: Envelope) -> None:
        # Flattened (no super().__init__() call): one of these is allocated
        # per message send, which makes this the hottest constructor in the
        # whole system.
        self.time = 0.0
        self.cancelled = False
        self.envelope = envelope

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MessageDelivery t={self.time:.3f} {self.envelope!r}>"


class Timer(Event):
    """A process-local alarm: fires the target core's ``on_timer(tag, payload)``.

    The returned event object doubles as the cancellation handle
    (``timer.cancel()``), mirroring how real event loops hand out timer
    handles.
    """

    __slots__ = ("pid", "tag", "payload")

    def __init__(self, pid: Hashable, tag: str, payload: Any = None) -> None:
        super().__init__()
        self.pid = pid
        self.tag = tag
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timer t={self.time:.3f} pid={self.pid!r} tag={self.tag!r}>"


class NodeCrash(Event):
    """Take a process down: it stops executing until a :class:`NodeRecover`."""

    __slots__ = ("pid",)

    def __init__(self, pid: Hashable) -> None:
        super().__init__()
        self.pid = pid


class NodeRecover(Event):
    """Bring a crashed process back; held messages/timers are re-scheduled."""

    __slots__ = ("pid",)

    def __init__(self, pid: Hashable) -> None:
        super().__init__()
        self.pid = pid


class PartitionStart(Event):
    """Split the membership into isolated groups.

    ``groups`` is a tuple of frozensets of pids.  Messages between two
    *different* groups are held; a pid not listed in any group keeps talking
    to everyone (so a partial partition is expressible).  A new
    ``PartitionStart`` replaces the previous partition wholesale.
    """

    __slots__ = ("groups",)

    def __init__(self, groups: tuple[frozenset, ...]) -> None:
        super().__init__()
        self.groups = tuple(frozenset(group) for group in groups)


class PartitionHeal(Event):
    """Dissolve the active partition and release all held cross-traffic."""

    __slots__ = ()


class Inject(Event):
    """Run an arbitrary callback against the network at a scheduled time."""

    __slots__ = ("fn", "label")

    def __init__(self, fn: Callable[..., None], label: str = "inject") -> None:
        super().__init__()
        self.fn = fn
        self.label = label

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Inject t={self.time:.3f} {self.label!r}>"
