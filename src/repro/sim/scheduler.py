"""Pluggable scheduling policies: who decides when a message arrives.

In the asynchronous model the adversary owns the schedule: it may hold any
message for an arbitrary *finite* time.  A :class:`Scheduler` is that
adversary as a strategy object — given an envelope at submit time it decides
the in-flight delay (the kernel then orders deliveries by time).

Three policies ship with the kernel:

* :class:`DelayModelScheduler` — the default; delegates to the seed's
  :class:`~repro.engine.delays.DelayModel` hierarchy, which is what keeps
  every seed run bit-for-bit reproducible after the kernel refactor.
* :class:`RandomScheduler` — a chaos-monkey schedule: i.i.d. uniform delays
  over a wide spread, i.e. near-arbitrary reordering.  Good for fuzzing
  protocol guards that accidentally assume FIFO-ness.
* :class:`WorstCaseScheduler` — a liveness-stress adversary that starves
  chosen links (or every link touching chosen victim processes) by a large
  finite delay while delivering everything else fast.  Because the starve
  delay is finite, the paper's liveness theorems still apply: GWTS/SbS
  decisions are *delayed, never prevented* — which is exactly what the
  partition-churn experiment demonstrates.
"""

from __future__ import annotations

import abc
import random
from collections.abc import Hashable, Iterable
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.delays import DelayModel
    from repro.engine.envelope import Envelope


class Scheduler(abc.ABC):
    """Strategy deciding the in-flight delay of each submitted envelope."""

    @abc.abstractmethod
    def delay(self, envelope: Envelope, rng: random.Random) -> float:
        """Return the (non-negative, finite) delay for ``envelope``."""

    def describe(self) -> str:
        """Human-readable description for experiment reports."""
        return type(self).__name__


class DelayModelScheduler(Scheduler):
    """Adapter: drive the kernel with a seed-era :class:`DelayModel`."""

    def __init__(self, model: DelayModel | None = None) -> None:
        if model is None:
            # Imported here, not at module level: the engine backends import
            # this module, so a top-level import would be circular.
            from repro.engine.delays import UniformDelay

            model = UniformDelay()
        self.model = model

    def delay(self, envelope: Envelope, rng: random.Random) -> float:
        return self.model.delay(envelope, rng)

    def describe(self) -> str:
        return f"DelayModelScheduler({self.model.describe()})"


class RandomScheduler(Scheduler):
    """Near-arbitrary reordering: i.i.d. uniform delays over ``[0, spread]``."""

    def __init__(self, spread: float = 10.0) -> None:
        if spread <= 0:
            raise ValueError("spread must be positive")
        self.spread = spread

    def delay(self, envelope: Envelope, rng: random.Random) -> float:
        return rng.uniform(0.0, self.spread)

    def describe(self) -> str:
        return f"RandomScheduler(spread={self.spread})"


class WorstCaseScheduler(Scheduler):
    """Starve chosen links by a large finite delay; deliver the rest fast.

    ``starved_links`` are unordered pid pairs; ``victims`` starves every link
    touching those pids (both directions).  Everything else is delivered
    after ``fast_delay`` — the contrast is what makes the starvation an
    adversarial *schedule* rather than mere slowness.

    A tiny seeded jitter is added to starved deliveries so they do not all
    collapse onto one timestamp (keeping tie-breaking exercise realistic)
    while staying fully deterministic.
    """

    def __init__(
        self,
        starved_links: Iterable[tuple[Hashable, Hashable]] = (),
        victims: Iterable[Hashable] = (),
        starve_delay: float = 200.0,
        fast_delay: float = 0.5,
    ) -> None:
        if starve_delay <= 0 or fast_delay <= 0:
            raise ValueError("delays must be positive")
        self.starved_links: set[frozenset] = {frozenset(pair) for pair in starved_links}
        self.victims: set[Hashable] = set(victims)
        self.starve_delay = starve_delay
        self.fast_delay = fast_delay

    @classmethod
    def quorum_critical(
        cls,
        members: Iterable[Hashable],
        f: int,
        starve_delay: float = 200.0,
        fast_delay: float = 0.5,
    ) -> WorstCaseScheduler:
        """The strongest link-starving schedule the membership ``(n, f)`` allows.

        A proposer needs a Byzantine ack quorum ``q = floor((n + f) / 2) + 1``
        (the same formula as :func:`repro.core.quorum.byzantine_quorum`,
        restated locally to keep the kernel layer import-free of the protocol
        layer).  A fixed victim list starves all links touching a hand-picked
        pid — but whenever fewer than ``n - q + 1`` processes are starved, the
        remaining fast processes still form a whole quorum and every other
        proposer decides at fast-link speed, so the adversary wastes most of
        its power.  This constructor instead *computes* the quorum-critical
        set: the minimal number of starved processes, ``n - q + 1``, that
        leaves only ``q - 1`` fast responders — forcing **every** proposer to
        wait on at least one starved link per ack quorum, round after round.

        The victims are the tail of the membership order.  Scenario builders
        place Byzantine processes in the tail slots, which makes this the
        adversary's best play twice over: the starved set overlaps the
        processes that were never going to help anyway, so the ``n - f``
        disclosure and ``q`` ack thresholds must both cross a starved link.
        The starvation is finite, so the paper's liveness theorems still
        apply: decisions are delayed, never prevented.
        """
        member_list = list(members)
        n = len(member_list)
        if n == 0:
            raise ValueError("quorum-critical starvation needs a non-empty membership")
        if f < 0:
            raise ValueError("f must be non-negative")
        quorum = (n + f) // 2 + 1
        count = min(n, max(1, n - quorum + 1))
        return cls(
            victims=member_list[n - count:],
            starve_delay=starve_delay,
            fast_delay=fast_delay,
        )

    def _starves(self, envelope: Envelope) -> bool:
        if envelope.sender in self.victims or envelope.dest in self.victims:
            return True
        if self.starved_links and frozenset((envelope.sender, envelope.dest)) in self.starved_links:
            return True
        return False

    def delay(self, envelope: Envelope, rng: random.Random) -> float:
        if self._starves(envelope):
            return self.starve_delay + rng.uniform(0.0, 1.0)
        return self.fast_delay

    def describe(self) -> str:
        return (
            f"WorstCaseScheduler({len(self.starved_links)} links, "
            f"{len(self.victims)} victims, starve={self.starve_delay})"
        )
