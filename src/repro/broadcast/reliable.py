"""Bracha reliable broadcast over authenticated point-to-point channels.

The component is embedded in a host :class:`~repro.engine.ProtocolCore`: the
host forwards every incoming payload to :meth:`ReliableBroadcaster.handle`,
which returns ``True`` when the payload was a broadcast-internal message (the
host should then ignore it); deliveries are reported through a callback.
Protocol messages are emitted through the host's effect buffer, so the
broadcaster itself stays sans-I/O.

Broadcast instances are identified by ``(origin, tag)``.  GWTS tags each
disclosure and each acceptor ack with its round number (footnote 2 of the
paper: the primitive "is designed to avoid possible confusion of messages in
round based algorithms"), so instances from different rounds never interfere.
"""

from __future__ import annotations
from collections.abc import Callable, Hashable

from dataclasses import dataclass
from typing import Any

from repro.engine.core import ProtocolCore

#: Identifier of one broadcast instance.
InstanceKey = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class RBInit:
    """First round of Bracha broadcast: the origin sends its value to all."""

    origin: Hashable
    tag: Hashable
    value: Any
    mtype: str = "rb_init"


@dataclass(frozen=True)
class RBEcho:
    """Second round: every process echoes the first value it saw."""

    origin: Hashable
    tag: Hashable
    value: Any
    mtype: str = "rb_echo"


@dataclass(frozen=True)
class RBReady:
    """Third round: processes declare readiness to deliver the value."""

    origin: Hashable
    tag: Hashable
    value: Any
    mtype: str = "rb_ready"


def is_rb_message(payload: Any) -> bool:
    """Return ``True`` iff ``payload`` is internal to the broadcast protocol."""
    return isinstance(payload, (RBInit, RBEcho, RBReady))


class _InstanceState:
    """Per-(origin, tag) protocol state at one process."""

    __slots__ = (
        "echo_senders",
        "ready_senders",
        "echo_votes",
        "ready_votes",
        "sent_echo",
        "sent_ready",
        "delivered",
    )

    def __init__(self) -> None:
        # Which peers we have already counted (one vote per peer per phase,
        # so a Byzantine peer cannot stuff the ballot with duplicates).
        self.echo_senders: set[Hashable] = set()
        self.ready_senders: set[Hashable] = set()
        # Votes per candidate value.
        self.echo_votes: dict[Any, set[Hashable]] = {}
        self.ready_votes: dict[Any, set[Hashable]] = {}
        self.sent_echo = False
        self.sent_ready = False
        self.delivered = False


class ReliableBroadcaster:
    """Bracha reliable broadcast endpoint embedded in a host node.

    Parameters
    ----------
    node:
        The host core; protocol messages are emitted through its effect
        buffer (``node.broadcast``).
    n, f:
        System size and Byzantine tolerance threshold.  The thresholds are the
        classic ones: echo quorum ``floor((n + f) / 2) + 1``, ready
        amplification ``f + 1``, delivery quorum ``2 f + 1``.
    deliver:
        Callback ``deliver(origin, tag, value)`` invoked exactly once per
        delivered instance — this is the pseudocode's ``RBcastDelivery``
        event.
    """

    def __init__(
        self,
        node: ProtocolCore,
        n: int,
        f: int,
        deliver: Callable[[Hashable, Hashable, Any], None],
    ) -> None:
        if n < 3 * f + 1:
            # The primitive is still instantiable (the lower-bound experiment
            # deliberately runs with too few processes) but its guarantees are
            # void; we record the fact for the experiment reports.
            self.under_provisioned = True
        else:
            self.under_provisioned = False
        self._node = node
        self._n = n
        self._f = f
        self._deliver = deliver
        self._instances: dict[InstanceKey, _InstanceState] = {}
        self.echo_quorum = (n + f) // 2 + 1
        self.ready_amplify = f + 1
        self.ready_quorum = 2 * f + 1

    # -- API used by the host node -----------------------------------------------

    def broadcast(self, tag: Hashable, value: Any) -> None:
        """Reliably broadcast ``value`` under ``tag`` (origin = host node)."""
        init = RBInit(origin=self._node.pid, tag=tag, value=value)
        self._node.broadcast(init, include_self=True)

    def handle(self, sender: Hashable, payload: Any) -> bool:
        """Process a potentially broadcast-internal message.

        Returns ``True`` when ``payload`` belonged to the broadcast protocol
        (and was consumed), ``False`` otherwise so the host can handle it.
        """
        if isinstance(payload, RBInit):
            self._on_init(sender, payload)
            return True
        if isinstance(payload, RBEcho):
            self._on_echo(sender, payload)
            return True
        if isinstance(payload, RBReady):
            self._on_ready(sender, payload)
            return True
        return False

    # -- protocol ------------------------------------------------------------------

    def _state(self, key: InstanceKey) -> _InstanceState:
        state = self._instances.get(key)
        if state is None:
            state = _InstanceState()
            self._instances[key] = state
        return state

    def _on_init(self, sender: Hashable, msg: RBInit) -> None:
        # Authenticated channels: only the origin itself may start its own
        # broadcast instance.  A Byzantine process relaying a forged INIT for
        # somebody else is ignored here.
        if sender != msg.origin:
            return
        state = self._state((msg.origin, msg.tag))
        if state.sent_echo:
            # Echo only the *first* value received from the origin; an
            # equivocating origin cannot make us echo two values.
            return
        state.sent_echo = True
        echo = RBEcho(origin=msg.origin, tag=msg.tag, value=msg.value)
        self._node.broadcast(echo, include_self=True)

    def _on_echo(self, sender: Hashable, msg: RBEcho) -> None:
        state = self._state((msg.origin, msg.tag))
        if sender in state.echo_senders:
            return
        state.echo_senders.add(sender)
        votes = state.echo_votes.setdefault(msg.value, set())
        votes.add(sender)
        if len(votes) >= self.echo_quorum and not state.sent_ready:
            state.sent_ready = True
            ready = RBReady(origin=msg.origin, tag=msg.tag, value=msg.value)
            self._node.broadcast(ready, include_self=True)

    def _on_ready(self, sender: Hashable, msg: RBReady) -> None:
        state = self._state((msg.origin, msg.tag))
        if sender in state.ready_senders:
            return
        state.ready_senders.add(sender)
        votes = state.ready_votes.setdefault(msg.value, set())
        votes.add(sender)
        if len(votes) >= self.ready_amplify and not state.sent_ready:
            # Amplification step: f+1 readys prove at least one correct
            # process saw an echo quorum, so it is safe to join.
            state.sent_ready = True
            ready = RBReady(origin=msg.origin, tag=msg.tag, value=msg.value)
            self._node.broadcast(ready, include_self=True)
        if len(votes) >= self.ready_quorum and not state.delivered:
            state.delivered = True
            self._deliver(msg.origin, msg.tag, msg.value)

    # -- introspection (used by tests) ----------------------------------------------

    def delivered_instances(self) -> set[InstanceKey]:
        """Instances this endpoint has delivered."""
        return {
            key for key, state in self._instances.items() if state.delivered
        }
