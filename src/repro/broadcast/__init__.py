"""Byzantine reliable broadcast (Bracha-style).

The WTS and GWTS algorithms "make use of a Byzantine reliable broadcast
primitive to circumvent adversarial runs where a Byzantine process may induce
correct processes to deliver different input values" (Section 1).  The paper
cites Bracha [12] / Srikanth-Toueg [13] and the round-tagged formulation of
Mendes et al. [14].

:class:`ReliableBroadcaster` implements Bracha's echo/ready protocol on top
of the authenticated point-to-point channels of :mod:`repro.engine`.  Under
``n >= 3f + 1`` it guarantees, per broadcast instance ``(origin, tag)``:

* **Validity** — if a correct process broadcasts ``v``, every correct process
  eventually delivers ``v`` for that instance;
* **Agreement / integrity** — no two correct processes deliver different
  values for the same instance, and at most one value is delivered per
  instance, even when the origin is Byzantine and equivocates;
* **Cost** — ``O(n^2)`` point-to-point messages per broadcast, which is the
  term dominating WTS's message complexity (Section 5.1.3).
"""

from repro.broadcast.reliable import RBEcho, RBInit, RBReady, ReliableBroadcaster, is_rb_message

__all__ = [
    "ReliableBroadcaster",
    "RBInit",
    "RBEcho",
    "RBReady",
    "is_rb_message",
]
