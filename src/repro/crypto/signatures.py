"""HMAC-based simulated signature scheme.

The registry plays the role of the paper's PKI: it issues one secret key per
process identifier and can verify any signature.  The scheme provides the
``Sign`` / ``Verify`` interface of Algorithm 10 (Helper Procedures):

* ``Sign(e)`` — "signs the element e ... and returns a new element e' that is
  a signed version of e"; here :meth:`Signer.sign` returns a
  :class:`SignedValue` bundling the value, the signer id and the tag.
* ``Verify(e)`` — "returns true if and only if e has a correct signature";
  here :meth:`KeyRegistry.verify`.

Security model: forging requires knowing the per-process secret; Byzantine
processes in the simulation only ever receive their own :class:`Signer`, so
signatures of correct processes are existentially unforgeable with respect to
the modelled adversary (which is all the algorithms need).
"""

from __future__ import annotations

import hashlib
import hmac
import os
from collections.abc import Hashable
from dataclasses import dataclass
from typing import Any


class SignatureError(Exception):
    """Raised when signing/verification is attempted with unknown identities."""


def canonical_bytes(value: Any) -> bytes:
    """Serialise ``value`` into a canonical byte string for MAC computation.

    The encoding is deterministic for the value types used by the algorithms
    (nested tuples, frozensets, strings, ints, ``None`` and dataclass-free
    plain values): logically equal values map to equal byte strings, so a
    signature made on one replica verifies on another.
    """
    return _encode(value).encode("utf-8")


def _encode(value: Any) -> str:
    if value is None:
        return "N"
    if isinstance(value, bool):
        return f"B{int(value)}"
    if isinstance(value, int):
        return f"I{value}"
    if isinstance(value, float):
        return f"F{value!r}"
    if isinstance(value, str):
        return f"S{len(value)}:{value}"
    if isinstance(value, bytes):
        return f"Y{value.hex()}"
    if isinstance(value, (frozenset, set)):
        inner = sorted(_encode(item) for item in value)
        return "{" + ",".join(inner) + "}"
    if isinstance(value, (tuple, list)):
        inner = [_encode(item) for item in value]
        return "(" + ",".join(inner) + ")"
    if isinstance(value, dict):
        inner = sorted(f"{_encode(k)}:{_encode(v)}" for k, v in value.items())
        return "<" + ",".join(inner) + ">"
    # Fall back to repr for exotic-but-hashable values; repr of such values is
    # required to be stable within a single simulation run, which is all the
    # algorithms rely on.
    return f"R{value!r}"


@dataclass(frozen=True)
class SignedValue:
    """A value together with its claimed signer and signature tag.

    Instances are immutable and hashable so they can be members of lattice
    elements (the SbS algorithm stores signed values inside ``Proposed_set``).
    """

    value: Any
    signer: Hashable
    tag: bytes

    @property
    def sender(self) -> Hashable:
        """Alias matching the paper's ``v.sender`` notation (Section 8.1)."""
        return self.signer

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SignedValue(value={self.value!r}, signer={self.signer!r})"


class Signer:
    """Per-process signing handle issued by :class:`KeyRegistry`."""

    def __init__(self, identity: Hashable, secret: bytes, registry: KeyRegistry) -> None:
        self._identity = identity
        self._secret = secret
        self._registry = registry

    @property
    def identity(self) -> Hashable:
        """The process identifier whose key this signer holds."""
        return self._identity

    def sign(self, value: Any) -> SignedValue:
        """Sign ``value`` with this process's key (the paper's ``Sign``)."""
        tag = self._registry.mac(self._secret, self._identity, value)
        return SignedValue(value=value, signer=self._identity, tag=tag)

    def verify(self, signed: SignedValue) -> bool:
        """Verify any process's signature via the registry (the paper's ``Verify``)."""
        return self._registry.verify(signed)


class KeyRegistry:
    """Trusted key directory: issues keys and verifies signatures.

    One registry instance is shared by all processes of a simulation; it is
    part of the trusted computing base (like the PKI of the paper) and is not
    subject to Byzantine corruption.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._keys: dict[Hashable, bytes] = {}
        self._seed = seed
        self._counter = 0
        # Verification memo keyed by object identity.  Signed values are
        # immutable and passed by reference inside one simulation, so a value
        # verified once never needs re-hashing; this keeps the SbS AllSafe
        # checks (which re-verify the same proof objects on every message)
        # from dominating large-n runs.  The dict holds a strong reference to
        # the object so an id() is never reused while the entry is alive.
        self._verify_memo: dict[int, tuple] = {}
        #: Scratch memoisation space for higher-level validators (e.g. the
        #: SbS ``AllSafe`` checks).  Keyed by caller-chosen tuples; values are
        #: ``(anchor_object, result)`` pairs where the anchor keeps the id()
        #: of the validated object stable.  Scoped to this registry, i.e. to
        #: one simulation run.
        self.validation_memo: dict[tuple, tuple] = {}

    def register(self, identity: Hashable) -> Signer:
        """Issue (or re-issue) the signer for ``identity``."""
        if identity not in self._keys:
            self._keys[identity] = self._generate_key(identity)
        return Signer(identity, self._keys[identity], self)

    def signer_for(self, identity: Hashable) -> Signer:
        """Return the signer for an already-registered identity."""
        if identity not in self._keys:
            raise SignatureError(f"identity {identity!r} is not registered")
        return Signer(identity, self._keys[identity], self)

    def knows(self, identity: Hashable) -> bool:
        """Return ``True`` iff ``identity`` has been registered."""
        return identity in self._keys

    def mac(self, secret: bytes, identity: Hashable, value: Any) -> bytes:
        """Compute the MAC tag binding ``identity`` to ``value``."""
        message = canonical_bytes((identity, value))
        return hmac.new(secret, message, hashlib.sha256).digest()

    def verify(self, signed: SignedValue) -> bool:
        """Return ``True`` iff ``signed`` carries a valid tag for its signer."""
        if not isinstance(signed, SignedValue):
            return False
        memo = self._verify_memo.get(id(signed))
        if memo is not None and memo[0] is signed:
            return memo[1]
        secret = self._keys.get(signed.signer)
        if secret is None:
            return False
        expected = self.mac(secret, signed.signer, signed.value)
        result = hmac.compare_digest(expected, signed.tag)
        self._verify_memo[id(signed)] = (signed, result)
        return result

    # -- internal --------------------------------------------------------------

    def _generate_key(self, identity: Hashable) -> bytes:
        self._counter += 1
        if self._seed is not None:
            # Deterministic keys for reproducible simulations: derived from the
            # seed and identity, still unknown to other simulated processes.
            material = canonical_bytes((self._seed, self._counter, identity))
            return hashlib.sha256(material).digest()
        return os.urandom(32)
