"""Simulated public-key infrastructure (Section 8 of the paper).

The SbS ("Safety by Signature") algorithms assume "a public-key
infrastructure, and that each process is able to sign a message, in such a
way that each other process is able to unambiguously verify such signature"
and that Byzantine processes "are not able to forge a valid signature for a
process in C".

In this reproduction the PKI is simulated with HMAC-SHA256: every process is
issued a secret signing key by a trusted :class:`KeyRegistry`; the registry
verifies signatures on behalf of any process.  Byzantine processes never
learn the secret keys of correct processes (the registry only ever hands a
process its own key), so they cannot forge signatures — exactly the
capability model of the paper.  Signature payloads are canonically serialised
so that two logically equal values always verify identically.
"""

from repro.crypto.signatures import KeyRegistry, SignatureError, SignedValue, Signer, canonical_bytes

__all__ = [
    "KeyRegistry",
    "Signer",
    "SignedValue",
    "SignatureError",
    "canonical_bytes",
]
