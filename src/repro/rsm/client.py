"""RSM clients: the update / read protocols of Algorithms 5 and 6.

A :class:`RSMClient` executes a *script* of operations.  By default
(``pipeline=1``) it is strictly sequential: the next operation starts only
after the previous one completed (this is what gives the real-time order
that linearizability is checked against).  Because the paper's updates are
*commutative* — any set of concurrent updates joins into one decision —
independent updates need not wait on each other: ``pipeline=k`` keeps up to
``k`` updates in flight at once, which is what makes the replicas'
``batch_size`` knob reachable from the client side (a strictly sequential
client hands GWTS one value per round, so nothing ever batches).  Reads are
always barriers: a read starts only once every earlier operation completed,
and nothing starts behind an in-flight read — the read/confirm protocol of
Algorithm 6 is what anchors real-time order, so it is never reordered.
Each completed operation is recorded as an :class:`OperationRecord` with its
invocation and completion times and, for reads, the returned value; the
history of all clients feeds :func:`repro.rsm.checker.check_rsm_history`.

:class:`ByzantineClient` implements the misbehaviours considered by
Lemma 12: submitting inadmissible commands, contacting fewer than ``f + 1``
replicas, and firing updates without waiting for completion.
"""

from __future__ import annotations
from collections.abc import Hashable, Sequence

from dataclasses import dataclass
from typing import Any

from repro.engine.core import ProtocolCore
from repro.rsm.commands import Command, make_command, nop_command
from repro.rsm.replica import ConfirmReply, ConfirmRequest, DecideNotice, UpdateRequest


@dataclass
class OperationRecord:
    """One completed (or still pending) client operation."""

    client: Hashable
    kind: str  # "update" or "read"
    command: Command
    start_time: float
    end_time: float | None = None
    result: frozenset[Command] | None = None

    @property
    def completed(self) -> bool:
        """Whether the operation has terminated."""
        return self.end_time is not None


@dataclass
class _InFlightOp:
    """Per-operation protocol state while the operation is in flight."""

    record: OperationRecord
    #: Decide receipts for the command: replica -> accepted_set.
    dec_receipts: dict[Hashable, frozenset[Command]]
    #: Confirmation receipts per candidate value: value -> set of replicas.
    conf_receipts: dict[frozenset[Command], set[Hashable]]
    confirm_phase: bool = False
    retry_timer: Any = None


class RSMClient(ProtocolCore):
    """A correct RSM client executing a script of operations.

    Parameters
    ----------
    pid:
        Client identifier (used to make its commands unique).
    replicas:
        The replica membership.
    f:
        Resilience threshold of the replica group; updates are submitted to
        ``f + 1`` replicas and completions wait for ``f + 1`` receipts.
    script:
        Sequence of operations, each either ``("update", payload)`` or
        ``("read",)``.
    retry_timeout:
        Timeout (in simulated time) after which an operation still in flight
        is retried — the update/confirm messages are re-sent, escalating
        from the initial ``f + 1`` replicas to *all* replicas.  Retries use
        the kernel's timer events, so a client stuck behind a crash or a
        partition recovers on its own instead of relying on ad-hoc message
        re-injection by the harness.  ``None`` disables retries.  Replicas
        treat re-submitted commands idempotently, so retries never violate
        the RSM specification.
    pipeline:
        Maximum number of update operations in flight at once (default 1 =
        strictly sequential, the paper's client).  Commutative updates need
        not wait for each other's decisions, so a pipelined client keeps
        GWTS rounds full and makes the replicas' ``batch_size`` knob
        effective.  Reads are always barriers regardless of this setting.
    """

    RETRY_TAG = "rsm_retry"

    def __init__(
        self,
        pid: Hashable,
        replicas: Sequence[Hashable],
        f: int,
        script: Sequence[tuple[Any, ...]] = (),
        retry_timeout: float | None = 150.0,
        pipeline: int = 1,
    ) -> None:
        super().__init__(pid)
        if pipeline < 1:
            raise ValueError("pipeline must be at least 1")
        self.replicas: tuple[Hashable, ...] = tuple(replicas)
        self.f = f
        self.script: list[tuple[Any, ...]] = list(script)
        self.history: list[OperationRecord] = []
        self.retry_timeout = retry_timeout
        self.pipeline = pipeline
        #: Number of timeout-driven retries performed (for tests/metrics).
        self.retries = 0
        self._seq = 0
        #: Operations currently in flight, keyed by their command ``seq``
        #: (insertion order = invocation order; at most ``pipeline`` entries).
        self._inflight: dict[int, _InFlightOp] = {}

    # -- script driving ---------------------------------------------------------------

    def on_start(self) -> None:
        self._start_next_operation()

    def _start_next_operation(self) -> None:
        """Fill the pipeline window from the front of the script."""
        while self.script and len(self._inflight) < self.pipeline:
            kind = self.script[0][0]
            if kind == "read" and self._inflight:
                return  # a read is a barrier: it starts alone
            kind, *args = self.script.pop(0)
            self._seq += 1
            if kind == "update":
                command = make_command(self.pid, self._seq, args[0])
            elif kind == "read":
                command = nop_command(self.pid, self._seq)
            else:
                raise ValueError(f"unknown operation kind {kind!r}")
            record = OperationRecord(
                client=self.pid, kind=kind, command=command, start_time=self.now
            )
            op = _InFlightOp(record=record, dec_receipts={}, conf_receipts={})
            self._inflight[self._seq] = op
            self.history.append(record)
            # Algorithm 5 line 3 / Algorithm 6 line 3: submit to (f + 1) replicas.
            for replica in self.replicas[: self.f + 1]:
                self.send(replica, UpdateRequest(command=command))
            self._arm_retry(op)
            if kind == "read":
                return  # nothing starts behind an in-flight read

    def submit_operations(self, operations: Sequence[tuple[Any, ...]]) -> None:
        """Append operations to the script, starting them if there is window room.

        Service mode (:mod:`repro.cluster`) feeds a long-lived client work in
        phases instead of a fixed construction-time script; each appended
        batch still executes after everything already queued.  Must be called
        from an effect-applying context (a harness step or
        :meth:`repro.cluster.runtime.CoreHost.call`) so the emitted
        submission effects are drained.
        """
        self.script.extend(operations)
        self._start_next_operation()

    # -- timeout-driven retry -----------------------------------------------------------

    def _arm_retry(self, op: _InFlightOp) -> None:
        if self.retry_timeout is None:
            return
        op.retry_timer = self.set_timer(
            self.retry_timeout, self.RETRY_TAG, op.record.command.seq
        )

    def on_timer(self, tag: str, payload: Any = None) -> None:
        if tag != self.RETRY_TAG:
            return
        op = self._inflight.get(payload)
        if op is None:
            return  # the operation completed while the timer was in flight
        record = op.record
        self.retries += 1
        self.log_event("operation_retry", {"kind": record.kind, "seq": record.command.seq})
        if op.confirm_phase:
            # Re-ask every replica to confirm each candidate decision value.
            # dict.fromkeys (not set): deduplicate in receipt order so the
            # re-send order is independent of PYTHONHASHSEED.
            for accepted_set in dict.fromkeys(op.dec_receipts.values()):
                for replica in self.replicas:
                    self.send(replica, ConfirmRequest(accepted_set=accepted_set))
        else:
            # Escalate the submission from (f + 1) replicas to all of them:
            # some of the original targets may be crashed or cut off.
            for replica in self.replicas:
                self.send(replica, UpdateRequest(command=record.command))
        self._arm_retry(op)

    # -- message handling -----------------------------------------------------------------

    def on_message(self, sender: Hashable, payload: Any) -> None:
        if isinstance(payload, DecideNotice):
            self._handle_decide(sender, payload)
        elif isinstance(payload, ConfirmReply):
            self._handle_confirm_reply(sender, payload)

    def _handle_decide(self, sender: Hashable, msg: DecideNotice) -> None:
        if sender not in self.replicas or not isinstance(msg.accepted_set, frozenset):
            return
        accepted = msg.accepted_set
        # One notice can cover several in-flight commands: concurrent
        # commutative updates all join into the same decision.  Iterate over
        # a snapshot — completing an operation refills the pipeline, and the
        # refill must not be credited with this (already consumed) notice.
        for op_seq in list(self._inflight):
            op = self._inflight.get(op_seq)
            if op is None:
                continue  # completed by an earlier iteration's refill cascade
            record = op.record
            if record.command not in accepted:
                continue
            op.dec_receipts[sender] = accepted
            if len(op.dec_receipts) < self.f + 1:
                continue
            if record.kind == "update":
                # Algorithm 5 line 4: the update completes.
                self._complete(op_seq, result=None)
            elif not op.confirm_phase:
                # Algorithm 6 lines 6-8: ask every replica to confirm each of
                # the (f + 1) candidate decision values (deduplicated in
                # receipt order — hash order would not be reproducible across
                # processes).
                op.confirm_phase = True
                for accepted_set in dict.fromkeys(op.dec_receipts.values()):
                    for replica in self.replicas:
                        self.send(replica, ConfirmRequest(accepted_set=accepted_set))

    def _handle_confirm_reply(self, sender: Hashable, msg: ConfirmReply) -> None:
        if sender not in self.replicas or not isinstance(msg.accepted_set, frozenset):
            return
        # Reads are barriers, so at most one read is ever in flight.
        for op_seq, op in list(self._inflight.items()):
            record = op.record
            if record.kind != "read" or not op.confirm_phase:
                continue
            replicas = op.conf_receipts.setdefault(msg.accepted_set, set())
            replicas.add(sender)
            # Algorithm 6 lines 11-12: the first value confirmed by (f + 1)
            # replicas is returned (executed).
            if len(replicas) >= self.f + 1:
                self._complete(op_seq, result=msg.accepted_set)

    def _complete(self, op_seq: int, result: frozenset[Command] | None) -> None:
        op = self._inflight.pop(op_seq, None)
        if op is None:
            return
        if op.retry_timer is not None:
            op.retry_timer.cancel()
            op.retry_timer = None
        record = op.record
        record.end_time = self.now
        record.result = result
        self.log_event("operation_complete", {"kind": record.kind, "seq": record.command.seq})
        # Surface the completion to the harness (collected in engine.outputs)
        # so experiments can observe client progress without polling cores.
        self.output("operation_complete", {"kind": record.kind, "seq": record.command.seq})
        self._start_next_operation()

    # -- introspection ------------------------------------------------------------------------

    @property
    def all_completed(self) -> bool:
        """Whether every scripted operation has completed."""
        return not self.script and not self._inflight

    def completed_operations(self) -> list[OperationRecord]:
        """All operations that have completed, in invocation order."""
        return [record for record in self.history if record.completed]


class ByzantineClient(ProtocolCore):
    """A misbehaving client (Lemma 12's threat model).

    Modes (combinable through the constructor flags):

    * ``send_garbage`` — submit operations that are not admissible commands;
    * ``under_replicate`` — contact a single replica instead of ``f + 1``;
    * ``no_wait`` — fire all updates immediately without waiting for any
      completion (they become concurrent updates, which GWTS handles).

    The point of this class is the *negative* guarantee: none of these
    behaviours can prevent correct clients' operations from completing or
    break the RSM properties for correct clients.
    """

    def __init__(
        self,
        pid: Hashable,
        replicas: Sequence[Hashable],
        f: int,
        payloads: Sequence[Any] = (),
        send_garbage: bool = True,
        under_replicate: bool = True,
        no_wait: bool = True,
    ) -> None:
        super().__init__(pid)
        self.replicas = tuple(replicas)
        self.f = f
        self.payloads = list(payloads)
        self.send_garbage = send_garbage
        self.under_replicate = under_replicate
        self.no_wait = no_wait

    @property
    def is_byzantine(self) -> bool:
        return True

    def on_start(self) -> None:
        targets = self.replicas[:1] if self.under_replicate else self.replicas[: self.f + 1]
        seq = 0
        for payload in self.payloads:
            seq += 1
            command = make_command(self.pid, seq, payload)
            for replica in targets:
                self.send(replica, UpdateRequest(command=command))
        if self.send_garbage:
            for replica in self.replicas:
                # Not a Command instance at all: correct replicas must filter it.
                self.send(replica, UpdateRequest(command="garbage-command"))  # type: ignore[arg-type]

    def on_message(self, sender: Hashable, payload: Any) -> None:
        # Never acknowledges anything; keeps replicas guessing.
        pass
