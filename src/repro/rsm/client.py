"""RSM clients: the update / read protocols of Algorithms 5 and 6.

A :class:`RSMClient` executes a *script* of operations sequentially: the next
operation starts only after the previous one completed (this is what gives
the real-time order that linearizability is checked against).  Each completed
operation is recorded as an :class:`OperationRecord` with its invocation and
completion times and, for reads, the returned value; the history of all
clients feeds :func:`repro.rsm.checker.check_rsm_history`.

:class:`ByzantineClient` implements the misbehaviours considered by
Lemma 12: submitting inadmissible commands, contacting fewer than ``f + 1``
replicas, and firing updates without waiting for completion.
"""

from __future__ import annotations
from collections.abc import Hashable, Sequence

from dataclasses import dataclass
from typing import Any

from repro.engine.core import ProtocolCore
from repro.rsm.commands import Command, make_command, nop_command
from repro.rsm.replica import ConfirmReply, ConfirmRequest, DecideNotice, UpdateRequest


@dataclass
class OperationRecord:
    """One completed (or still pending) client operation."""

    client: Hashable
    kind: str  # "update" or "read"
    command: Command
    start_time: float
    end_time: float | None = None
    result: frozenset[Command] | None = None

    @property
    def completed(self) -> bool:
        """Whether the operation has terminated."""
        return self.end_time is not None


class RSMClient(ProtocolCore):
    """A correct RSM client executing a sequential script of operations.

    Parameters
    ----------
    pid:
        Client identifier (used to make its commands unique).
    replicas:
        The replica membership.
    f:
        Resilience threshold of the replica group; updates are submitted to
        ``f + 1`` replicas and completions wait for ``f + 1`` receipts.
    script:
        Sequence of operations, each either ``("update", payload)`` or
        ``("read",)``.  Executed strictly sequentially.
    retry_timeout:
        Timeout (in simulated time) after which an operation still in flight
        is retried — the update/confirm messages are re-sent, escalating
        from the initial ``f + 1`` replicas to *all* replicas.  Retries use
        the kernel's timer events, so a client stuck behind a crash or a
        partition recovers on its own instead of relying on ad-hoc message
        re-injection by the harness.  ``None`` disables retries.  Replicas
        treat re-submitted commands idempotently, so retries never violate
        the RSM specification.
    """

    RETRY_TAG = "rsm_retry"

    def __init__(
        self,
        pid: Hashable,
        replicas: Sequence[Hashable],
        f: int,
        script: Sequence[tuple[Any, ...]] = (),
        retry_timeout: float | None = 150.0,
    ) -> None:
        super().__init__(pid)
        self.replicas: tuple[Hashable, ...] = tuple(replicas)
        self.f = f
        self.script: list[tuple[Any, ...]] = list(script)
        self.history: list[OperationRecord] = []
        self.retry_timeout = retry_timeout
        #: Number of timeout-driven retries performed (for tests/metrics).
        self.retries = 0
        self._retry_timer = None
        self._seq = 0
        self._current: OperationRecord | None = None
        #: Decide receipts for the in-flight command: replica -> accepted_set.
        self._dec_receipts: dict[Hashable, frozenset[Command]] = {}
        #: Confirmation receipts per candidate value: value -> set of replicas.
        self._conf_receipts: dict[frozenset[Command], set[Hashable]] = {}
        self._confirm_phase = False

    # -- script driving ---------------------------------------------------------------

    def on_start(self) -> None:
        self._start_next_operation()

    def _start_next_operation(self) -> None:
        if self._current is not None or not self.script:
            return
        kind, *args = self.script.pop(0)
        self._seq += 1
        if kind == "update":
            command = make_command(self.pid, self._seq, args[0])
        elif kind == "read":
            command = nop_command(self.pid, self._seq)
        else:
            raise ValueError(f"unknown operation kind {kind!r}")
        record = OperationRecord(
            client=self.pid, kind=kind, command=command, start_time=self.now
        )
        self._current = record
        self.history.append(record)
        self._dec_receipts = {}
        self._conf_receipts = {}
        self._confirm_phase = False
        # Algorithm 5 line 3 / Algorithm 6 line 3: submit to (f + 1) replicas.
        for replica in self.replicas[: self.f + 1]:
            self.send(replica, UpdateRequest(command=command))
        self._arm_retry()

    def submit_operations(self, operations: Sequence[tuple[Any, ...]]) -> None:
        """Append operations to the script, starting them if the client is idle.

        Service mode (:mod:`repro.cluster`) feeds a long-lived client work in
        phases instead of a fixed construction-time script; each appended
        batch still executes strictly sequentially after everything already
        queued.  Must be called from an effect-applying context (a harness
        step or :meth:`repro.cluster.runtime.CoreHost.call`) so the emitted
        submission effects are drained.
        """
        self.script.extend(operations)
        if self._current is None:
            self._start_next_operation()

    # -- timeout-driven retry -----------------------------------------------------------

    def _arm_retry(self) -> None:
        if self.retry_timeout is None:
            return
        self._retry_timer = self.set_timer(self.retry_timeout, self.RETRY_TAG, self._seq)

    def _disarm_retry(self) -> None:
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    def on_timer(self, tag: str, payload: Any = None) -> None:
        if tag != self.RETRY_TAG:
            return
        record = self._current
        if record is None or payload != self._seq:
            return  # the operation completed while the timer was in flight
        self.retries += 1
        self.log_event("operation_retry", {"kind": record.kind, "seq": record.command.seq})
        if self._confirm_phase:
            # Re-ask every replica to confirm each candidate decision value.
            # dict.fromkeys (not set): deduplicate in receipt order so the
            # re-send order is independent of PYTHONHASHSEED.
            for accepted_set in dict.fromkeys(self._dec_receipts.values()):
                for replica in self.replicas:
                    self.send(replica, ConfirmRequest(accepted_set=accepted_set))
        else:
            # Escalate the submission from (f + 1) replicas to all of them:
            # some of the original targets may be crashed or cut off.
            for replica in self.replicas:
                self.send(replica, UpdateRequest(command=record.command))
        self._arm_retry()

    # -- message handling -----------------------------------------------------------------

    def on_message(self, sender: Hashable, payload: Any) -> None:
        if isinstance(payload, DecideNotice):
            self._handle_decide(sender, payload)
        elif isinstance(payload, ConfirmReply):
            self._handle_confirm_reply(sender, payload)

    def _handle_decide(self, sender: Hashable, msg: DecideNotice) -> None:
        record = self._current
        if record is None or sender not in self.replicas:
            return
        if not isinstance(msg.accepted_set, frozenset):
            return
        if record.command not in msg.accepted_set:
            return
        self._dec_receipts[sender] = msg.accepted_set
        if len(self._dec_receipts) < self.f + 1:
            return
        if record.kind == "update":
            # Algorithm 5 line 4: the update completes.
            self._complete(result=None)
        elif not self._confirm_phase:
            # Algorithm 6 lines 6-8: ask every replica to confirm each of the
            # (f + 1) candidate decision values (deduplicated in receipt
            # order — hash order would not be reproducible across processes).
            self._confirm_phase = True
            for accepted_set in dict.fromkeys(self._dec_receipts.values()):
                for replica in self.replicas:
                    self.send(replica, ConfirmRequest(accepted_set=accepted_set))

    def _handle_confirm_reply(self, sender: Hashable, msg: ConfirmReply) -> None:
        record = self._current
        if record is None or record.kind != "read" or not self._confirm_phase:
            return
        if sender not in self.replicas or not isinstance(msg.accepted_set, frozenset):
            return
        replicas = self._conf_receipts.setdefault(msg.accepted_set, set())
        replicas.add(sender)
        # Algorithm 6 lines 11-12: the first value confirmed by (f + 1)
        # replicas is returned (executed).
        if len(replicas) >= self.f + 1:
            self._complete(result=msg.accepted_set)

    def _complete(self, result: frozenset[Command] | None) -> None:
        record = self._current
        if record is None:
            return
        self._disarm_retry()
        record.end_time = self.now
        record.result = result
        self.log_event("operation_complete", {"kind": record.kind, "seq": record.command.seq})
        # Surface the completion to the harness (collected in engine.outputs)
        # so experiments can observe client progress without polling cores.
        self.output("operation_complete", {"kind": record.kind, "seq": record.command.seq})
        self._current = None
        self._start_next_operation()

    # -- introspection ------------------------------------------------------------------------

    @property
    def all_completed(self) -> bool:
        """Whether every scripted operation has completed."""
        return not self.script and self._current is None

    def completed_operations(self) -> list[OperationRecord]:
        """All operations that have completed, in invocation order."""
        return [record for record in self.history if record.completed]


class ByzantineClient(ProtocolCore):
    """A misbehaving client (Lemma 12's threat model).

    Modes (combinable through the constructor flags):

    * ``send_garbage`` — submit operations that are not admissible commands;
    * ``under_replicate`` — contact a single replica instead of ``f + 1``;
    * ``no_wait`` — fire all updates immediately without waiting for any
      completion (they become concurrent updates, which GWTS handles).

    The point of this class is the *negative* guarantee: none of these
    behaviours can prevent correct clients' operations from completing or
    break the RSM properties for correct clients.
    """

    def __init__(
        self,
        pid: Hashable,
        replicas: Sequence[Hashable],
        f: int,
        payloads: Sequence[Any] = (),
        send_garbage: bool = True,
        under_replicate: bool = True,
        no_wait: bool = True,
    ) -> None:
        super().__init__(pid)
        self.replicas = tuple(replicas)
        self.f = f
        self.payloads = list(payloads)
        self.send_garbage = send_garbage
        self.under_replicate = under_replicate
        self.no_wait = no_wait

    @property
    def is_byzantine(self) -> bool:
        return True

    def on_start(self) -> None:
        targets = self.replicas[:1] if self.under_replicate else self.replicas[: self.f + 1]
        seq = 0
        for payload in self.payloads:
            seq += 1
            command = make_command(self.pid, seq, payload)
            for replica in targets:
                self.send(replica, UpdateRequest(command=command))
        if self.send_garbage:
            for replica in self.replicas:
                # Not a Command instance at all: correct replicas must filter it.
                self.send(replica, UpdateRequest(command="garbage-command"))  # type: ignore[arg-type]

    def on_message(self, sender: Hashable, payload: Any) -> None:
        # Never acknowledges anything; keeps replicas guessing.
        pass
