"""Byzantine-tolerant Replicated State Machine for commutative updates.

Section 7 of the paper: the RSM is built by running Generalized Lattice
Agreement (GWTS) over the power set of update commands.  Replicas play both
GWTS roles; clients interact through two operations:

* ``update(cmd)`` (Algorithm 5) — submit ``cmd`` to ``f + 1`` replicas and
  wait for ``f + 1`` decision notifications that include it;
* ``read()`` (Algorithm 6) — submit a unique ``nop``, collect ``f + 1``
  decision notifications, then *confirm* one of the returned decision values
  with ``f + 1`` replicas (Algorithm 7's plug-in) and return it.

The construction is wait-free, linearizable for commutative updates
(Theorem 6) and tolerates any number of Byzantine **clients** (Lemma 12) on
top of the ``f <= (n - 1)/3`` Byzantine replicas.

The package also provides a CRDT object layer (grow-only set, counters,
last-writer-wins register map) that interprets the command sets the RSM
stores, and a checker for the six RSM properties of Section 7.1.
"""

from repro.rsm.checker import RSMCheckResult, check_rsm_history
from repro.rsm.client import ByzantineClient, OperationRecord, RSMClient
from repro.rsm.commands import Command, make_command, nop_command
from repro.rsm.crdt import (
    GCounterObject,
    GSetObject,
    LWWRegisterObject,
    ORSetObject,
    PNCounterObject,
    ReplicatedObject,
)
from repro.rsm.replica import ConfirmReply, ConfirmRequest, DecideNotice, Replica, UpdateRequest
from repro.rsm.sharding import (
    ShardedRSMClient,
    join_map_shards,
    partition_replicas,
    project_map,
    routing_key,
    shard_of,
    shard_of_command,
    shard_of_operation,
)

__all__ = [
    "ShardedRSMClient",
    "join_map_shards",
    "partition_replicas",
    "project_map",
    "routing_key",
    "shard_of",
    "shard_of_command",
    "shard_of_operation",
    "Command",
    "nop_command",
    "make_command",
    "Replica",
    "UpdateRequest",
    "DecideNotice",
    "ConfirmRequest",
    "ConfirmReply",
    "RSMClient",
    "OperationRecord",
    "ByzantineClient",
    "ReplicatedObject",
    "GSetObject",
    "GCounterObject",
    "PNCounterObject",
    "LWWRegisterObject",
    "ORSetObject",
    "check_rsm_history",
    "RSMCheckResult",
]
