"""Checker for the RSM properties of Section 7.1.

Given the operation histories of the *correct* clients (each operation with
its invocation time, completion time and, for reads, the returned command
set), :func:`check_rsm_history` verifies:

* **Liveness** — every operation completed (optional, for truncated runs);
* **Read Validity** — every read returns a set of genuinely submitted
  commands (no fabricated commands ever surface to a reader);
* **Read Consistency** — any two read values are comparable (inclusion);
* **Read Monotonicity** — a read that starts after another completed returns
  a superset;
* **Update Stability** — if update ``u1`` completed before ``u2`` was
  invoked, every read containing ``u2``'s command also contains ``u1``'s;
* **Update Visibility** — if an update completed before a read started, the
  read's value contains its command.

These six properties are exactly the paper's specification; together with
commutativity of updates they give linearizability (Theorem 6).
"""

from __future__ import annotations
from collections.abc import Iterable, Sequence

from dataclasses import dataclass, field
from typing import Any

from repro.rsm.client import OperationRecord
from repro.rsm.commands import Command


def collect_admissible_commands(
    replica_nodes: Iterable[Any],
    histories: Iterable[Sequence[OperationRecord]],
) -> set[Command]:
    """The ground truth for Read Validity: everything genuinely submitted.

    Read Validity allows any command that actually entered the RSM —
    including well-formed commands from Byzantine clients (the specification
    bounds *what* can be read, not *who* may write).  The correct replicas'
    admission logs provide that set; the correct clients' own histories are
    unioned in so a command whose admission log entry lives only on a
    crashed-then-recovered replica is still recognized.
    """
    admissible: set[Command] = {
        command
        for node in replica_nodes
        for command in getattr(node, "admitted_commands", [])
    }
    admissible |= {record.command for history in histories for record in history}
    return admissible


@dataclass
class RSMCheckResult:
    """Outcome of the RSM property check."""

    ok: bool
    violations: dict[str, list[str]] = field(default_factory=dict)

    def add(self, prop: str, message: str) -> None:
        self.violations.setdefault(prop, []).append(message)
        self.ok = False

    def violated(self, prop: str) -> bool:
        """Whether property ``prop`` has at least one recorded violation."""
        return prop in self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "RSMCheckResult(ok)"
        parts = [f"{prop}: {msgs}" for prop, msgs in self.violations.items()]
        return "RSMCheckResult(violations=" + "; ".join(parts) + ")"


def check_rsm_history(
    histories: Iterable[Sequence[OperationRecord]],
    admissible_commands: set[Command] | None = None,
    require_liveness: bool = True,
) -> RSMCheckResult:
    """Check the six RSM properties over correct clients' operation records."""
    result = RSMCheckResult(ok=True)
    operations: list[OperationRecord] = [
        record for history in histories for record in history
    ]

    # Liveness.
    if require_liveness:
        for record in operations:
            if not record.completed:
                result.add(
                    "liveness",
                    f"{record.kind} #{record.command.seq} of client {record.client!r} never completed",
                )

    completed = [record for record in operations if record.completed]
    reads = [r for r in completed if r.kind == "read" and r.result is not None]
    updates = [r for r in completed if r.kind == "update"]

    # Read Validity: only genuinely submitted commands (plus read nops) may
    # appear in read results.
    if admissible_commands is not None:
        allowed = set(admissible_commands)
        for read in reads:
            for command in read.result:
                if isinstance(command, Command) and command.is_nop:
                    continue
                if command not in allowed:
                    result.add(
                        "read_validity",
                        f"read of {read.client!r} returned unknown command {command!r}",
                    )

    # Read Consistency: pairwise comparability of read values.
    for i, first in enumerate(reads):
        for second in reads[i + 1 :]:
            a, b = first.result, second.result
            if not (a <= b or b <= a):
                result.add(
                    "read_consistency",
                    f"incomparable reads by {first.client!r} and {second.client!r}",
                )

    # Read Monotonicity: real-time ordered reads return growing values.
    for first in reads:
        for second in reads:
            if first is second:
                continue
            if first.end_time is not None and second.start_time >= first.end_time:
                if not (first.result <= second.result):
                    result.add(
                        "read_monotonicity",
                        f"read by {second.client!r} at {second.start_time:.2f} lost commands "
                        f"seen by the read of {first.client!r} completed at {first.end_time:.2f}",
                    )

    # Update Stability: u1 completed before u2 invoked => any read containing
    # u2 also contains u1.
    for u1 in updates:
        for u2 in updates:
            if u1 is u2 or u1.end_time is None:
                continue
            if u2.start_time >= u1.end_time:
                for read in reads:
                    if u2.command in read.result and u1.command not in read.result:
                        result.add(
                            "update_stability",
                            f"read by {read.client!r} contains later update {u2.command!r} "
                            f"but not earlier update {u1.command!r}",
                        )

    # Update Visibility: an update completed before a read started must be
    # visible in that read.
    for update in updates:
        if update.end_time is None:
            continue
        for read in reads:
            if read.start_time >= update.end_time and update.command not in read.result:
                result.add(
                    "update_visibility",
                    f"read by {read.client!r} started after update {update.command!r} "
                    "completed but does not contain it",
                )
    return result
