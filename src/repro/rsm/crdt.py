"""CRDT object layer on top of the RSM's command sets.

The RSM stores *sets of commands*; "the value returned by the execution of a
set of commands is equal to the set of commands" and clients "locally execute
them" (Section 7.1).  A :class:`ReplicatedObject` is exactly that local
execution: a pure function from a command set to an application-level value,
restricted to commutative updates so that executing the set in any order is
well defined.

These are the "commuting replicated data types (CRDTs)" the paper's
introduction motivates (dependable counters, grow-only sets, ...).  Each
object provides

* ``op_*`` helpers producing the operation payloads a client submits via
  ``("update", payload)`` script entries, and
* :meth:`ReplicatedObject.value` evaluating a read result (a command set)
  into the object's value.

Objects can be multiplexed over one RSM by namespacing: every operation
payload carries the object's name, and each object only interprets its own
commands.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Iterable
from typing import Any

from repro.rsm.commands import Command


class ReplicatedObject(abc.ABC):
    """A commutative replicated data type interpreted from RSM command sets."""

    def __init__(self, name: str) -> None:
        self.name = name

    # -- command construction -------------------------------------------------------

    def tag(self, verb: str, *args: Any) -> tuple[Any, ...]:
        """Build a namespaced operation payload ``(name, verb, *args)``."""
        return (self.name, verb, *args)

    def owns(self, command: Command) -> bool:
        """Whether ``command`` belongs to this object (by namespace)."""
        operation = command.operation
        return (
            isinstance(operation, tuple)
            and len(operation) >= 2
            and operation[0] == self.name
        )

    def own_commands(self, commands: Iterable[Command]) -> Iterable[Command]:
        """Filter ``commands`` down to this object's namespace (skip nops)."""
        for command in commands:
            if isinstance(command, Command) and not command.is_nop and self.owns(command):
                yield command

    # -- evaluation --------------------------------------------------------------------

    @abc.abstractmethod
    def value(self, commands: Iterable[Command]) -> Any:
        """Execute the (unordered) command set and return the object's value."""


class GSetObject(ReplicatedObject):
    """Grow-only set: ``add(x)`` updates, value = set of added members."""

    def op_add(self, member: Any) -> tuple[Any, ...]:
        """Operation payload adding ``member`` to the set."""
        return self.tag("add", member)

    def value(self, commands: Iterable[Command]) -> frozenset[Any]:
        members: set[Any] = set()
        for command in self.own_commands(commands):
            if command.operation[1] == "add":
                members.add(command.operation[2])
        return frozenset(members)


class GCounterObject(ReplicatedObject):
    """Grow-only counter: ``inc(amount)`` updates, value = sum of amounts."""

    def op_inc(self, amount: int = 1) -> tuple[Any, ...]:
        """Operation payload incrementing the counter by ``amount`` (>= 0)."""
        if amount < 0:
            raise ValueError("a grow-only counter cannot be decremented")
        return self.tag("inc", amount)

    def value(self, commands: Iterable[Command]) -> int:
        total = 0
        for command in self.own_commands(commands):
            if command.operation[1] == "inc":
                total += int(command.operation[2])
        return total


class PNCounterObject(ReplicatedObject):
    """Positive-negative counter: ``inc`` and ``dec`` updates (both commute)."""

    def op_inc(self, amount: int = 1) -> tuple[Any, ...]:
        """Operation payload incrementing by ``amount``."""
        return self.tag("inc", amount)

    def op_dec(self, amount: int = 1) -> tuple[Any, ...]:
        """Operation payload decrementing by ``amount``."""
        return self.tag("dec", amount)

    def value(self, commands: Iterable[Command]) -> int:
        total = 0
        for command in self.own_commands(commands):
            verb = command.operation[1]
            amount = int(command.operation[2])
            if verb == "inc":
                total += amount
            elif verb == "dec":
                total -= amount
        return total


class LWWRegisterObject(ReplicatedObject):
    """Last-writer-wins register: ``write(timestamp, value)`` updates.

    Writes commute because the merged value depends only on the maximal
    ``(timestamp, tie_breaker)`` pair, not on the order the commands are
    applied in.
    """

    def op_write(self, timestamp: float, value: Any) -> tuple[Any, ...]:
        """Operation payload writing ``value`` stamped with ``timestamp``."""
        return self.tag("write", timestamp, value)

    def value(self, commands: Iterable[Command]) -> Any | None:
        best: tuple[float, str, Any] | None = None
        for command in self.own_commands(commands):
            if command.operation[1] != "write":
                continue
            timestamp = command.operation[2]
            written = command.operation[3]
            key = (timestamp, repr((command.client, command.seq)))
            if best is None or key > best[:2]:
                best = (key[0], key[1], written)
        return None if best is None else best[2]


class ORSetObject(ReplicatedObject):
    """Observed-remove set restricted to commutative (grow-only tag) semantics.

    ``add`` creates a uniquely tagged element; ``remove`` lists the tags it
    observed.  Both operations commute because removals only ever refer to
    concrete tags, never to "whatever is in the set right now".
    """

    def op_add(self, member: Any, tag_id: Hashable) -> tuple[Any, ...]:
        """Operation payload adding ``member`` under unique ``tag_id``."""
        return self.tag("add", member, tag_id)

    def op_remove(self, observed_tags: Iterable[Hashable]) -> tuple[Any, ...]:
        """Operation payload removing every element whose tag was observed."""
        return self.tag("remove", tuple(observed_tags))

    def value(self, commands: Iterable[Command]) -> frozenset[Any]:
        added: dict[Hashable, Any] = {}
        removed: set[Hashable] = set()
        for command in self.own_commands(commands):
            verb = command.operation[1]
            if verb == "add":
                member, tag_id = command.operation[2], command.operation[3]
                added[tag_id] = member
            elif verb == "remove":
                removed.update(command.operation[2])
        return frozenset(
            member for tag_id, member in added.items() if tag_id not in removed
        )
