"""RSM replica: a GWTS process plus the client-facing plug-in of Algorithm 7.

A :class:`Replica` is a :class:`~repro.core.gwts.GWTSProcess` (it plays both
the proposer and acceptor roles of GWTS, "for simplicity reasons replicas
play the role of both proposers and acceptors", Section 7.2) extended with:

* handling of client ``UpdateRequest`` messages — an admissible command is
  fed to GWTS via ``new_value({cmd})``; inadmissible commands (not lattice
  elements) are filtered, which is part of the Byzantine-client resilience
  argument of Lemma 12;
* decision notifications — whenever the replica decides, it sends a
  ``DecideNotice`` to every client whose command is newly covered by the
  decision (and to every client that submitted a ``nop``), which is how
  Algorithms 5 and 6 collect their ``f + 1`` receipts;
* the confirmation plug-in (Algorithm 7) — a ``ConfirmRequest`` for a value
  is answered once that value has a Byzantine quorum of acks in the
  replica's ``Ack_history``, proving it "has effectively been decided in
  GWTS".
"""

from __future__ import annotations
from collections.abc import Hashable, Sequence

from dataclasses import dataclass
from typing import Any

from repro.core.gwts import GWTSProcess
from repro.lattice.base import JoinSemilattice
from repro.lattice.set_lattice import SetLattice
from repro.rsm.commands import Command


@dataclass(frozen=True)
class UpdateRequest:
    """Client -> replica: please run ``new_value({command})`` (Algorithm 5 line 3)."""

    command: Command
    mtype: str = "rsm_update"


@dataclass(frozen=True)
class DecideNotice:
    """Replica -> client: ``<decide, Accepted_set, replica>`` (Algorithm 5 line 5)."""

    accepted_set: frozenset[Command]
    replica: Hashable
    mtype: str = "rsm_decide"


@dataclass(frozen=True)
class ConfirmRequest:
    """Client -> replica: ``<CnfReq, Accepted_set>`` (Algorithm 6 line 8)."""

    accepted_set: frozenset[Command]
    mtype: str = "rsm_cnf_req"


@dataclass(frozen=True)
class ConfirmReply:
    """Replica -> client: ``<CnfRep, Accepted_set, replica>`` (Algorithm 7 line 5)."""

    accepted_set: frozenset[Command]
    replica: Hashable
    mtype: str = "rsm_cnf_rep"


class Replica(GWTSProcess):
    """One RSM replica (GWTS participant + Algorithms 5–7 server side)."""

    def __init__(
        self,
        pid: Hashable,
        members: Sequence[Hashable],
        f: int,
        max_rounds: int = 6,
        lattice: JoinSemilattice | None = None,
        batch_size: int | None = None,
    ) -> None:
        lattice = lattice if lattice is not None else SetLattice()
        super().__init__(
            pid, lattice, members, f, max_rounds=max_rounds, batch_size=batch_size
        )
        #: Command -> set of clients to notify when it gets decided.
        self._interested_clients: dict[Command, set[Hashable]] = {}
        #: Commands already notified (per client), to avoid duplicate notices.
        self._notified: set[tuple[Hashable, Command]] = set()
        #: Pending confirmation requests: (client, accepted_set) not yet answered.
        self._pending_conf: list[tuple[Hashable, frozenset[Command]]] = []
        #: Commands this replica has admitted (for tests / experiments).
        self.admitted_commands: list[Command] = []

    # -- client-facing message handling ---------------------------------------------

    def on_message(self, sender: Hashable, payload: Any) -> None:
        if isinstance(payload, UpdateRequest):
            self._handle_update_request(sender, payload)
            self.recheck()
            self._flush_client_work()
            return
        if isinstance(payload, ConfirmRequest):
            self._handle_confirm_request(sender, payload)
            self._flush_client_work()
            return
        super().on_message(sender, payload)
        # GWTS progress may have produced new decisions or new ack history
        # entries; serve clients that were waiting on them.
        self._flush_client_work()

    def _handle_update_request(self, sender: Hashable, msg: UpdateRequest) -> None:
        command = msg.command
        if not isinstance(command, Command):
            return  # malformed Byzantine-client request
        element = frozenset({command})
        if not self.lattice.is_element(element):
            # Lemma 12: "if cmd is not an admissible command then correct
            # replicas filter out cmd".
            return
        self._interested_clients.setdefault(command, set()).add(sender)
        self.admitted_commands.append(command)
        self.new_value(element)

    def _handle_confirm_request(self, sender: Hashable, msg: ConfirmRequest) -> None:
        if not isinstance(msg.accepted_set, frozenset):
            return
        self._pending_conf.append((sender, msg.accepted_set))

    # -- plug-in work driven by GWTS progress ---------------------------------------------

    def _flush_client_work(self) -> None:
        self._send_decide_notices()
        self._answer_confirmations()

    def _send_decide_notices(self) -> None:
        """Notify interested clients about commands covered by our decisions."""
        if not self.decisions:
            return
        latest: frozenset[Command] = self.decisions[-1]
        for command, clients in self._interested_clients.items():
            if command in latest:
                for client in clients:
                    key = (client, command)
                    if key in self._notified:
                        continue
                    self._notified.add(key)
                    self.send(
                        client,
                        DecideNotice(accepted_set=latest, replica=self.pid),
                    )

    def _answer_confirmations(self) -> None:
        """Algorithm 7: confirm values that have a quorum of acks in Ack_history."""
        if not self._pending_conf:
            return
        still_pending: list[tuple[Hashable, frozenset[Command]]] = []
        for client, accepted_set in self._pending_conf:
            if self._is_committed(accepted_set):
                self.send(
                    client,
                    ConfirmReply(accepted_set=accepted_set, replica=self.pid),
                )
            else:
                still_pending.append((client, accepted_set))
        self._pending_conf = still_pending

    def _is_committed(self, accepted_set: frozenset[Command]) -> bool:
        """Whether ``accepted_set`` gathered a Byzantine quorum of acks here."""
        return any(
            key[0] == accepted_set and len(senders) >= self.quorum
            for key, senders in self.ack_history.items()
        )
