"""Commands: the elements of the RSM's power-set lattice.

"We assume that each command is unique (which can be easily done by tagging
it with the identifier of the client and a sequence number)" (Section 7.1).
A :class:`Command` is therefore a frozen record of (client, sequence number,
operation payload); reads use the special ``nop`` operation, which "locally
modifies a replica's state as for an ordinary command but is equivalent to a
nop operation when executed" (Section 7.2).
"""

from __future__ import annotations
from collections.abc import Hashable

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Command:
    """One unique update command of the RSM."""

    client: Hashable
    seq: int
    operation: Any

    @property
    def is_nop(self) -> bool:
        """Whether this command is a read marker (``nop``)."""
        return isinstance(self.operation, tuple) and self.operation[:1] == ("nop",)


def make_command(client: Hashable, seq: int, operation: Any) -> Command:
    """Build a (unique) update command for ``client``."""
    return Command(client=client, seq=seq, operation=operation)


def nop_command(client: Hashable, seq: int) -> Command:
    """Build the unique ``nop`` command a read operation submits."""
    return Command(client=client, seq=seq, operation=("nop",))
