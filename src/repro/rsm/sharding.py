"""Shard router and cross-shard read path for the sharded RSM data plane.

The paper's RSM is wait-free for *commutative* updates — which is exactly
the license to shard.  Key-space shards of a :class:`~repro.lattice
.map_lattice.MapLattice` are independent lattice instances: an update to
key ``k`` only ever grows shard ``shard_of(k)``'s sub-map, so running one
GWTS replica group per shard needs **no cross-shard coordination**.  The
pieces here:

* :func:`shard_of` — a stable, total routing hash.  Every key routes to
  exactly one shard, and the hash is ``zlib.crc32`` of the key's ``repr``
  (never the builtin ``hash``) so routing is identical across processes
  and ``PYTHONHASHSEED`` values — the orchestrator's byte-identical
  artifacts depend on that.
* :func:`routing_key` / :func:`shard_of_operation` — commands route by the
  replicated *object* they touch: an operation shaped ``(obj, ...)``
  routes by ``obj``, anything else routes by the whole payload.
* :func:`project_map` / :func:`join_map_shards` — the shard projection of
  a map element and its inverse.  Projection preserves the lattice order
  (it drops entries, never changes them), so the join of per-shard views
  of states ``m_1 ... m_S`` equals the view of ``m_1 ⊔ ... ⊔ m_S`` — the
  soundness argument for the cross-shard read path (same argument as the
  PR 7 linearizability audit's projection step).
* :class:`ShardedRSMClient` — one sans-I/O core multiplexing per-shard
  :class:`~repro.rsm.client.RSMClient` instances over the host engine:
  updates hash to one shard's replica group, a read fans out to *every*
  shard and returns the join of the per-shard confirmed views.
"""

from __future__ import annotations

import zlib
from collections.abc import Hashable, Sequence
from typing import Any

from repro.engine.core import ProtocolCore
from repro.lattice.base import JoinSemilattice, LatticeElement
from repro.rsm.client import OperationRecord, RSMClient
from repro.rsm.commands import Command, nop_command

__all__ = [
    "ShardedRSMClient",
    "join_map_shards",
    "partition_replicas",
    "project_map",
    "routing_key",
    "shard_of",
    "shard_of_command",
    "shard_of_operation",
]


def shard_of(key: Any, shards: int) -> int:
    """Route ``key`` to one of ``shards`` shards — stable, total, hash-seed-free.

    Uses ``crc32(repr(key))``: deterministic across interpreter runs and
    worker processes (the builtin ``hash`` is salted by ``PYTHONHASHSEED``
    and would shatter the orchestrator's byte-identical artifacts).
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    return zlib.crc32(repr(key).encode("utf-8", "backslashreplace")) % shards


def routing_key(operation: Any) -> Any:
    """The routing key of an operation payload.

    Operations shaped ``(obj, ...)`` (the :class:`~repro.lattice.map_lattice
    .MapLattice` convention: first element names the replicated object)
    route by ``obj``; any other payload routes by its own value.
    """
    if isinstance(operation, tuple) and operation:
        return operation[0]
    return operation


def shard_of_operation(operation: Any, shards: int) -> int:
    """Shard index an update operation routes to."""
    return shard_of(routing_key(operation), shards)


def shard_of_command(command: Command, shards: int) -> int:
    """Shard index a :class:`Command` routes to (by its operation payload)."""
    return shard_of_operation(command.operation, shards)


def partition_replicas(
    replicas: Sequence[Hashable], shards: int
) -> tuple[tuple[Hashable, ...], ...]:
    """Split a flat replica pid list into ``shards`` contiguous groups.

    Every group must keep at least one pid; the first ``len % shards``
    groups take the extra members.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if len(replicas) < shards:
        raise ValueError(f"cannot split {len(replicas)} replicas into {shards} shards")
    base, extra = divmod(len(replicas), shards)
    groups = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        groups.append(tuple(replicas[start : start + size]))
        start += size
    return tuple(groups)


# -- map-lattice shard projection ------------------------------------------------


def project_map(element: LatticeElement, shard: int, shards: int) -> LatticeElement:
    """The sub-map of ``element`` whose keys route to ``shard``.

    Projection drops entries and never alters the kept ones, so it is
    monotone: ``m1 <= m2`` implies ``project(m1) <= project(m2)``.
    """
    return tuple(
        entry for entry in element if shard_of(entry[0], shards) == shard
    )


def join_map_shards(
    lattice: JoinSemilattice, parts: Sequence[LatticeElement]
) -> LatticeElement:
    """Reassemble per-shard map views into one global view (their join)."""
    return lattice.join_all(parts)


# -- the sharded client ----------------------------------------------------------


class ShardedRSMClient(ProtocolCore):
    """A client core multiplexing one :class:`RSMClient` per shard.

    Parameters
    ----------
    pid:
        Client identifier (shared by every inner per-shard client — command
        uniqueness still holds because each inner client numbers its own
        command sequence and commands of different shards never meet in one
        lattice instance).
    shard_replicas:
        Per-shard replica memberships: ``shard_replicas[s]`` is the replica
        group of shard ``s``.
    f:
        Resilience threshold *per shard group*.
    script:
        Operations: ``("update", payload)`` routes to one shard by
        :func:`shard_of_operation`; ``("read",)`` fans out to every shard
        and completes with the join of the per-shard confirmed views.
    retry_timeout / pipeline:
        Forwarded to every inner client (per-shard retry timers carry a
        shard-specific tag so the host can demultiplex timer firings).

    Updates to different shards are dispatched eagerly (they are
    independent by construction); a read is a global barrier — it starts
    only once every shard drained and nothing starts behind it, preserving
    the real-time anchor of Algorithm 6.
    """

    def __init__(
        self,
        pid: Hashable,
        shard_replicas: Sequence[Sequence[Hashable]],
        f: int,
        script: Sequence[tuple[Any, ...]] = (),
        retry_timeout: float | None = 150.0,
        pipeline: int = 1,
    ) -> None:
        super().__init__(pid)
        if not shard_replicas:
            raise ValueError("need at least one shard")
        self.shards = len(shard_replicas)
        self.f = f
        self.script: list[tuple[Any, ...]] = list(script)
        #: Completed cross-shard reads (joined views), in invocation order.
        self.reads: list[OperationRecord] = []
        self._replica_shard: dict[Hashable, int] = {}
        self._clients: list[RSMClient] = []
        for shard, replicas in enumerate(shard_replicas):
            inner = RSMClient(
                pid,
                replicas,
                f,
                script=(),
                retry_timeout=retry_timeout,
                pipeline=pipeline,
            )
            # Instance attribute shadows the class tag: per-shard retry
            # timers stay demultiplexable at the host.
            inner.RETRY_TAG = f"{RSMClient.RETRY_TAG}/s{shard}"
            # The inner cores share the host's effect buffer, so their sends
            # and timers flow out under the host's (authenticated) identity.
            inner._out = self._out
            self._clients.append(inner)
            for replica in replicas:
                if replica in self._replica_shard:
                    raise ValueError(f"replica {replica!r} appears in two shards")
                self._replica_shard[replica] = shard
        self._read_active = False
        self._read_seq = 0
        self._read_start = 0.0

    # -- introspection ----------------------------------------------------------

    @property
    def clients(self) -> tuple[RSMClient, ...]:
        """The per-shard inner clients (index = shard)."""
        return tuple(self._clients)

    @property
    def all_completed(self) -> bool:
        """Whether every scripted operation (on every shard) completed."""
        return (
            not self.script
            and not self._read_active
            and all(client.all_completed for client in self._clients)
        )

    @property
    def retries(self) -> int:
        """Total timeout-driven retries across every shard."""
        return sum(client.retries for client in self._clients)

    def completed_updates(self) -> int:
        """Completed update operations summed over every shard."""
        return sum(
            1
            for client in self._clients
            for record in client.history
            if record.kind == "update" and record.completed
        )

    # -- script driving ----------------------------------------------------------

    def on_start(self) -> None:
        for client in self._clients:
            client.now = self.now
            client.on_start()
        self._pump()

    def submit_operations(self, operations: Sequence[tuple[Any, ...]]) -> None:
        """Append operations to the script, dispatching what can start now."""
        self.script.extend(operations)
        self._pump()

    def _pump(self) -> None:
        """Dispatch script operations: updates eagerly, reads as barriers."""
        while self.script:
            kind = self.script[0][0]
            if kind == "update":
                _, payload = self.script.pop(0)
                shard = shard_of_operation(payload, self.shards)
                inner = self._clients[shard]
                inner.now = self.now
                inner.submit_operations([("update", payload)])
            elif kind == "read":
                if self._read_active or not all(
                    client.all_completed for client in self._clients
                ):
                    return  # barrier: every shard must drain first
                self.script.pop(0)
                self._read_active = True
                self._read_seq += 1
                self._read_start = self.now
                for inner in self._clients:
                    inner.now = self.now
                    inner.submit_operations([("read",)])
                return  # nothing starts behind an in-flight read
            else:
                raise ValueError(f"unknown operation kind {kind!r}")

    def _after_event(self) -> None:
        """Settle a completed cross-shard read, then refill the pipeline."""
        if self._read_active and all(
            client.all_completed for client in self._clients
        ):
            joined: frozenset[Command] = frozenset()
            for client in self._clients:
                result = client.history[-1].result
                if result:
                    joined |= result
            record = OperationRecord(
                client=self.pid,
                kind="read",
                command=nop_command(self.pid, self._read_seq),
                start_time=self._read_start,
                end_time=self.now,
                result=joined,
            )
            self.reads.append(record)
            self._read_active = False
            self.output(
                "cross_shard_read",
                {"seq": self._read_seq, "commands": len(joined)},
            )
        self._pump()

    # -- event demultiplexing ----------------------------------------------------

    def on_message(self, sender: Hashable, payload: Any) -> None:
        shard = self._replica_shard.get(sender)
        if shard is None:
            return  # not one of our replicas
        inner = self._clients[shard]
        inner.now = self.now
        inner.on_message(sender, payload)
        self._after_event()

    def on_timer(self, tag: str, payload: Any = None) -> None:
        for inner in self._clients:
            if tag == inner.RETRY_TAG:
                inner.now = self.now
                inner.on_timer(tag, payload)
                self._after_event()
                return
