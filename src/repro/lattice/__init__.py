"""Join semilattice substrate.

The paper's algorithms are parameterised over an arbitrary join semilattice
``L = (V, +)`` (Section 3.1).  This package provides the abstract interface
(:class:`JoinSemilattice`), several concrete lattices used in the examples and
experiments, and utilities for checking the order-theoretic properties that
the Lattice Agreement specification relies on (comparability, chains,
breadth, Hasse diagrams).

All lattice element types are immutable value objects: ``join`` returns a new
element, never mutates its operands.  This mirrors the paper's treatment of
lattice elements as mathematical values and makes the algorithm
implementations trivially safe to share between simulated processes.
"""

from repro.lattice.base import JoinSemilattice, LatticeElement, comparable, leq, lt
from repro.lattice.chain import (
    all_comparable,
    chain_violations,
    hasse_diagram_text,
    hasse_edges,
    is_chain,
    lattice_breadth,
    longest_chain,
    sort_chain,
)
from repro.lattice.counter import GCounterLattice, MaxIntLattice, MinIntDualLattice
from repro.lattice.map_lattice import MapLattice
from repro.lattice.product import ProductLattice
from repro.lattice.set_lattice import FrozenSetElement, SetLattice
from repro.lattice.vector_clock import VectorClockLattice

__all__ = [
    "JoinSemilattice",
    "LatticeElement",
    "leq",
    "lt",
    "comparable",
    "SetLattice",
    "FrozenSetElement",
    "GCounterLattice",
    "MaxIntLattice",
    "MinIntDualLattice",
    "MapLattice",
    "VectorClockLattice",
    "ProductLattice",
    "is_chain",
    "all_comparable",
    "longest_chain",
    "sort_chain",
    "chain_violations",
    "lattice_breadth",
    "hasse_edges",
    "hasse_diagram_text",
]
