"""Counter-style lattices.

The paper motivates Generalized Lattice Agreement with "the implementation of
a dependable counter with add and read operations, where updates (adds) are
commutative" (Section 1).  Two standard formulations are provided:

* :class:`GCounterLattice` — the grow-only counter CRDT: a map from process
  id to a monotonically non-decreasing contribution, joined pointwise by
  ``max``.  The counter value is the sum of contributions.
* :class:`MaxIntLattice` — the lattice of non-negative integers under
  ``max``; useful as a tiny lattice for unit tests and for modelling
  high-water marks.
* :class:`MinIntDualLattice` — integers under ``min`` (the order dual),
  included to exercise the algorithms on a lattice whose join is not a
  "growth" operation in the intuitive sense.
"""

from __future__ import annotations
from collections.abc import Mapping

from typing import Any

from repro.lattice.base import JoinSemilattice, LatticeElement

#: G-counter elements are canonicalised as sorted tuples of (pid, count).
GCounterElement = tuple[tuple[Any, int], ...]


class GCounterLattice(JoinSemilattice):
    """Grow-only counter lattice (pointwise-max of per-process contributions)."""

    def bottom(self) -> GCounterElement:
        """The all-zero counter."""
        return ()

    def join(self, a: LatticeElement, b: LatticeElement) -> GCounterElement:
        """Pointwise maximum of the two contribution maps."""
        merged = dict(a)
        for pid, count in b:
            merged[pid] = max(merged.get(pid, 0), count)
        return self._canonical(merged)

    def is_element(self, value: Any) -> bool:
        if not isinstance(value, tuple):
            return False
        try:
            return all(
                isinstance(count, int) and count >= 0 for _pid, count in value
            )
        except (TypeError, ValueError):
            return False

    # -- helpers ---------------------------------------------------------------

    def lift(self, value: Any) -> GCounterElement:
        """Inject a ``{pid: count}`` mapping (or an already-canonical tuple)."""
        if isinstance(value, Mapping):
            return self._canonical(dict(value))
        if self.is_element(value):
            return self._canonical(dict(value))
        raise ValueError(f"{value!r} is not a valid G-counter element")

    def increment(self, element: LatticeElement, pid: Any, amount: int = 1) -> GCounterElement:
        """Return ``element`` with ``pid``'s contribution increased by ``amount``."""
        if amount < 0:
            raise ValueError("G-counter increments must be non-negative")
        counts = dict(element)
        counts[pid] = counts.get(pid, 0) + amount
        return self._canonical(counts)

    @staticmethod
    def value(element: LatticeElement) -> int:
        """The observable counter value: sum of all contributions."""
        return sum(count for _pid, count in element)

    @staticmethod
    def _canonical(counts: Mapping[Any, int]) -> GCounterElement:
        return tuple(sorted((pid, count) for pid, count in counts.items() if count > 0))

    def describe(self) -> str:
        return "GCounterLattice"


class MaxIntLattice(JoinSemilattice):
    """Non-negative integers ordered by ``<=`` with ``max`` as join."""

    def bottom(self) -> int:
        return 0

    def join(self, a: LatticeElement, b: LatticeElement) -> int:
        return max(int(a), int(b))

    def is_element(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool) and value >= 0

    def lift(self, value: Any) -> int:
        if not self.is_element(value):
            raise ValueError(f"{value!r} is not a non-negative integer")
        return int(value)

    def describe(self) -> str:
        return "MaxIntLattice"


class MinIntDualLattice(JoinSemilattice):
    """Integers (plus a top sentinel) ordered by ``>=`` with ``min`` as join.

    The bottom element is ``None`` which acts as "+infinity": joining it with
    any integer yields the integer.  This is the order dual of
    :class:`MaxIntLattice` and exists mainly to make sure nothing in the
    agreement code accidentally assumes joins "grow" numerically.
    """

    def bottom(self) -> None:
        return None

    def join(self, a: LatticeElement, b: LatticeElement) -> LatticeElement:
        if a is None:
            return b
        if b is None:
            return a
        return min(int(a), int(b))

    def is_element(self, value: Any) -> bool:
        if value is None:
            return True
        return isinstance(value, int) and not isinstance(value, bool)

    def describe(self) -> str:
        return "MinIntDualLattice"
