"""Product lattice: componentwise join of a fixed tuple of lattices.

The product of join semilattices is a join semilattice under componentwise
join.  This is useful for composing heterogeneous replicated state (e.g. a
grow-only set alongside a counter) behind a single agreement instance, and it
exercises the "works on any possible lattice" claim with a non-set lattice.
"""

from __future__ import annotations
from collections.abc import Sequence

from typing import Any

from repro.lattice.base import JoinSemilattice, LatticeElement

#: Product elements are tuples with one component per factor lattice.
ProductElement = tuple[LatticeElement, ...]


class ProductLattice(JoinSemilattice):
    """Cartesian product of join semilattices with componentwise join."""

    def __init__(self, factors: Sequence[JoinSemilattice]) -> None:
        if not factors:
            raise ValueError("a product lattice needs at least one factor")
        self._factors: tuple[JoinSemilattice, ...] = tuple(factors)

    @property
    def factors(self) -> tuple[JoinSemilattice, ...]:
        """The component lattices, in order."""
        return self._factors

    def bottom(self) -> ProductElement:
        return tuple(factor.bottom() for factor in self._factors)

    def join(self, a: LatticeElement, b: LatticeElement) -> ProductElement:
        return tuple(
            factor.join(x, y) for factor, x, y in zip(self._factors, a, b, strict=True)
        )

    def is_element(self, value: Any) -> bool:
        if not isinstance(value, tuple) or len(value) != len(self._factors):
            return False
        return all(
            factor.is_element(component)
            for factor, component in zip(self._factors, value, strict=True)
        )

    # -- helpers ---------------------------------------------------------------

    def lift(self, value: Any) -> ProductElement:
        """Lift a tuple of raw component values componentwise."""
        if not isinstance(value, (tuple, list)) or len(value) != len(self._factors):
            raise ValueError(
                f"expected a {len(self._factors)}-tuple of component values, got {value!r}"
            )
        return tuple(
            factor.lift(component) for factor, component in zip(self._factors, value, strict=True)
        )

    def inject(self, index: int, component: LatticeElement) -> ProductElement:
        """Return bottom with component ``index`` replaced by ``component``."""
        element = list(self.bottom())
        if not self._factors[index].is_element(component):
            raise ValueError(f"{component!r} is not an element of factor {index}")
        element[index] = component
        return tuple(element)

    def describe(self) -> str:
        inner = ", ".join(factor.describe() for factor in self._factors)
        return f"ProductLattice({inner})"
