"""Order-theoretic utilities: chains, comparability, breadth, Hasse diagrams.

These utilities implement the checks that the Lattice Agreement specification
(Section 3.1) and the related-work discussion (Section 2, Figure 1) rely on:

* *Comparability* — any two decisions must be ordered (they form a chain);
  :func:`all_comparable` and :func:`chain_violations` verify this.
* *Chains* — Figure 1 highlights "the chain (sequence of increasing values)
  selected by the Lattice Agreement protocol"; :func:`sort_chain` and
  :func:`longest_chain` recover that chain from a set of decisions.
* *Breadth* — footnote 1 defines the breadth of a semilattice; for finite
  set lattices :func:`lattice_breadth` computes it and powers experiment E9
  (the impossibility argument against the restrictive specification).
* *Hasse diagrams* — :func:`hasse_edges` / :func:`hasse_diagram_text`
  reproduce the structure of Figure 1 for the examples and docs.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence

from repro.lattice.base import JoinSemilattice, LatticeElement


def all_comparable(lattice: JoinSemilattice, values: Iterable[LatticeElement]) -> bool:
    """Return ``True`` iff every pair of ``values`` is comparable in ``lattice``."""
    values = list(values)
    return all(
        lattice.comparable(a, b) for a, b in itertools.combinations(values, 2)
    )


def chain_violations(
    lattice: JoinSemilattice, values: Iterable[LatticeElement]
) -> list[tuple[LatticeElement, LatticeElement]]:
    """Return every incomparable pair among ``values`` (empty when a chain)."""
    values = list(values)
    return [
        (a, b)
        for a, b in itertools.combinations(values, 2)
        if not lattice.comparable(a, b)
    ]


def is_chain(lattice: JoinSemilattice, values: Sequence[LatticeElement]) -> bool:
    """Return ``True`` iff ``values`` is non-decreasing in the lattice order.

    Unlike :func:`all_comparable` this checks the *sequence* order as well —
    it is the Local Stability check of the GLA specification (decisions of a
    single process must be non-decreasing).
    """
    return all(lattice.leq(a, b) for a, b in zip(values, values[1:], strict=False))


def sort_chain(
    lattice: JoinSemilattice, values: Iterable[LatticeElement]
) -> list[LatticeElement]:
    """Sort a set of pairwise-comparable values into an ascending chain.

    Raises ``ValueError`` if the values are not pairwise comparable, since a
    total order is then impossible (and the agreement properties have been
    violated).
    """
    values = list(values)
    if not all_comparable(lattice, values):
        raise ValueError("values are not pairwise comparable; no chain exists")
    # Pairwise comparability of a finite set implies a total preorder; simple
    # insertion using the number of elements each value dominates yields the
    # ascending chain.
    return sorted(values, key=lambda v: sum(1 for w in values if lattice.leq(w, v)))


def longest_chain(
    lattice: JoinSemilattice, values: Iterable[LatticeElement]
) -> list[LatticeElement]:
    """Return a longest ascending chain contained in ``values``.

    Works on arbitrary (possibly incomparable) value sets; used by the
    experiments to visualise how much of the lattice a run explored.
    """
    values = list(dict.fromkeys(values))
    # Longest path in the DAG of the strict order restricted to ``values``.
    best: dict[int, list[LatticeElement]] = {}

    def chain_from(index: int) -> list[LatticeElement]:
        if index in best:
            return best[index]
        head = values[index]
        best_tail: list[LatticeElement] = []
        for other_index, other in enumerate(values):
            if other_index != index and lattice.lt(head, other):
                tail = chain_from(other_index)
                if len(tail) > len(best_tail):
                    best_tail = tail
        best[index] = [head] + best_tail
        return best[index]

    longest: list[LatticeElement] = []
    for index in range(len(values)):
        candidate = chain_from(index)
        if len(candidate) > len(longest):
            longest = candidate
    return longest


def lattice_breadth(
    lattice: JoinSemilattice, elements: Sequence[LatticeElement]
) -> int:
    """Compute the breadth of the sub-semilattice spanned by ``elements``.

    Footnote 1 of the paper: the breadth is the largest ``n`` such that there
    is a set ``U`` of size ``n + 1`` whose join cannot be obtained from any
    proper subset... equivalently the largest antichain-like "irredundant
    join" size.  We compute, by brute force over subsets of ``elements``, the
    largest ``k`` such that some ``k``-subset ``U`` is *irredundant*: no
    proper subset of ``U`` has the same join as ``U``.  This exponential
    search is only used on the small element sets of experiment E9.
    """
    elements = list(dict.fromkeys(elements))
    breadth = 0
    for size in range(1, len(elements) + 1):
        found = False
        for subset in itertools.combinations(elements, size):
            total = lattice.join_all(subset)
            redundant = any(
                lattice.join_all(subset[:i] + subset[i + 1 :]) == total
                for i in range(len(subset))
            )
            if not redundant:
                found = True
                break
        if found:
            breadth = size
        else:
            break
    return breadth


def hasse_edges(
    lattice: JoinSemilattice, elements: Iterable[LatticeElement]
) -> set[tuple[LatticeElement, LatticeElement]]:
    """Return the covering relation (Hasse diagram edges) of ``elements``.

    An edge ``(a, b)`` means ``a < b`` with no element of ``elements``
    strictly between them — exactly the "upward path" edges of Figure 1.
    """
    elements = list(dict.fromkeys(elements))
    edges: set[tuple[LatticeElement, LatticeElement]] = set()
    for a, b in itertools.permutations(elements, 2):
        if not lattice.lt(a, b):
            continue
        if any(
            lattice.lt(a, c) and lattice.lt(c, b)
            for c in elements
            if c != a and c != b
        ):
            continue
        edges.add((a, b))
    return edges


def hasse_diagram_text(
    lattice: JoinSemilattice,
    elements: Iterable[LatticeElement],
    highlight_chain: Sequence[LatticeElement] = (),
) -> str:
    """Render a small Hasse diagram as indented text, grouped by height.

    ``highlight_chain`` marks elements (with ``*``) that belong to the chain
    selected by the agreement protocol, mirroring the red edges of Figure 1.
    """
    elements = list(dict.fromkeys(elements))
    highlight: frozenset[LatticeElement] = frozenset(highlight_chain)

    def height(value: LatticeElement) -> int:
        below = [w for w in elements if lattice.lt(w, value)]
        if not below:
            return 0
        return 1 + max(height(w) for w in below)

    by_height: dict[int, list[LatticeElement]] = {}
    for value in elements:
        by_height.setdefault(height(value), []).append(value)

    lines: list[str] = []
    for level in sorted(by_height, reverse=True):
        rendered = []
        for value in sorted(by_height[level], key=repr):
            marker = "*" if value in highlight else " "
            rendered.append(f"{marker}{_render_element(value)}")
        lines.append(f"level {level}: " + "   ".join(rendered))
    return "\n".join(lines)


def _render_element(value: LatticeElement) -> str:
    if isinstance(value, frozenset):
        if not value:
            return "{}"
        return "{" + ",".join(sorted(map(str, value))) + "}"
    return repr(value)
