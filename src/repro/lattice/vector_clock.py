"""Vector clock lattice.

Vector clocks over a fixed set of process identifiers form a join
semilattice under pointwise maximum.  They are a classic example of a lattice
whose agreement decisions correspond to consistent global snapshots — the
original motivation of Attiya et al. for Lattice Agreement (Section 1 of the
paper: "Lattice Agreement describes situations in which processes need to
obtain some knowledge on the global execution of the system, for example a
global photography of the system").
"""

from __future__ import annotations
from collections.abc import Mapping, Sequence

from typing import Any

from repro.lattice.base import JoinSemilattice, LatticeElement

#: Vector clock elements are fixed-length tuples of non-negative ints.
VectorClockElement = tuple[int, ...]


class VectorClockLattice(JoinSemilattice):
    """Fixed-dimension vector clocks joined by pointwise maximum."""

    def __init__(self, dimension: int) -> None:
        if dimension <= 0:
            raise ValueError("vector clock dimension must be positive")
        self._dimension = dimension

    @property
    def dimension(self) -> int:
        """Number of components (processes) tracked by the clock."""
        return self._dimension

    def bottom(self) -> VectorClockElement:
        return (0,) * self._dimension

    def join(self, a: LatticeElement, b: LatticeElement) -> VectorClockElement:
        return tuple(max(x, y) for x, y in zip(a, b, strict=True))

    def is_element(self, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and len(value) == self._dimension
            and all(isinstance(x, int) and not isinstance(x, bool) and x >= 0 for x in value)
        )

    # -- helpers ---------------------------------------------------------------

    def lift(self, value: Any) -> VectorClockElement:
        """Inject a sequence or ``{index: count}`` mapping into the lattice."""
        if isinstance(value, Mapping):
            clock = [0] * self._dimension
            for index, count in value.items():
                clock[int(index)] = int(count)
            element = tuple(clock)
        elif isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            element = tuple(int(x) for x in value)
        else:
            raise ValueError(f"cannot lift {value!r} into a vector clock")
        if not self.is_element(element):
            raise ValueError(f"{value!r} is not a valid vector clock")
        return element

    def tick(self, element: LatticeElement, index: int) -> VectorClockElement:
        """Return ``element`` with component ``index`` advanced by one."""
        clock = list(element)
        clock[index] += 1
        return tuple(clock)

    def describe(self) -> str:
        return f"VectorClockLattice(dim={self._dimension})"
