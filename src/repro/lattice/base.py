"""Abstract join-semilattice interface.

Section 3.1 of the paper: values ``V`` form a join semilattice ``L = (V, +)``
for a commutative join operation ``+``; ``u <= v`` iff ``v = u + v``.

A :class:`JoinSemilattice` instance describes one particular lattice: how to
build its elements, how to join them, and what the bottom element is.  The
elements themselves can be arbitrary hashable Python values; the lattice
object is the single authority on their ordering.  This separation lets the
agreement algorithms stay completely generic ("works on any possible
lattice", as the paper's title claims) while the experiments plug in the
power-set lattice of Figure 1, counters, maps, vector clocks, and products.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Iterable
from typing import Any, TypeVar

#: Type alias for lattice elements.  Elements must be hashable and immutable.
LatticeElement = Hashable

E = TypeVar("E", bound=LatticeElement)


class JoinSemilattice(abc.ABC):
    """A join semilattice ``(V, join)``.

    Subclasses must provide :meth:`bottom`, :meth:`join` and
    :meth:`is_element`.  The partial order, joins of collections and
    comparability predicates are derived from those primitives, exactly as in
    the paper ("``u <= v`` if and only if ``v = u + v``").
    """

    # -- primitive operations -------------------------------------------------

    @abc.abstractmethod
    def bottom(self) -> LatticeElement:
        """Return the least element of the lattice (the empty proposal)."""

    @abc.abstractmethod
    def join(self, a: LatticeElement, b: LatticeElement) -> LatticeElement:
        """Return the least upper bound of ``a`` and ``b``."""

    @abc.abstractmethod
    def is_element(self, value: Any) -> bool:
        """Return ``True`` iff ``value`` is a well-formed element of ``V``.

        The algorithms use this as the "value is an element of the lattice"
        admissibility filter (Algorithm 1 line 10, Algorithm 3 line 17,
        Algorithm 8 line 13): proposals from Byzantine processes that are not
        lattice points are silently dropped.
        """

    # -- derived operations ----------------------------------------------------

    def join_all(self, values: Iterable[LatticeElement]) -> LatticeElement:
        """Return the join of every element of ``values`` (bottom if empty)."""
        result = self.bottom()
        for value in values:
            result = self.join(result, value)
        return result

    def leq(self, a: LatticeElement, b: LatticeElement) -> bool:
        """Return ``True`` iff ``a <= b`` in the lattice order."""
        return self.join(a, b) == b

    def lt(self, a: LatticeElement, b: LatticeElement) -> bool:
        """Return ``True`` iff ``a < b`` (strictly below)."""
        return a != b and self.leq(a, b)

    def geq(self, a: LatticeElement, b: LatticeElement) -> bool:
        """Return ``True`` iff ``a >= b``."""
        return self.leq(b, a)

    def comparable(self, a: LatticeElement, b: LatticeElement) -> bool:
        """Return ``True`` iff ``a <= b`` or ``b <= a`` (Comparability)."""
        return self.leq(a, b) or self.leq(b, a)

    def equal(self, a: LatticeElement, b: LatticeElement) -> bool:
        """Return ``True`` iff ``a`` and ``b`` denote the same lattice point."""
        return self.leq(a, b) and self.leq(b, a)

    # -- helpers used by experiments ------------------------------------------

    def lift(self, value: Any) -> LatticeElement:
        """Convert a raw application value into a lattice element.

        The default implementation requires ``value`` to already be an
        element.  Concrete lattices override this to provide convenient
        injection of application-level values (e.g. a single command into a
        singleton set, an integer into a counter increment).
        """
        if not self.is_element(value):
            raise ValueError(f"{value!r} is not an element of {self!r}")
        return value

    def describe(self) -> str:
        """Short human-readable description used in experiment reports."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.describe()}>"


# Module level convenience wrappers -------------------------------------------


def leq(lattice: JoinSemilattice, a: LatticeElement, b: LatticeElement) -> bool:
    """Module-level alias of :meth:`JoinSemilattice.leq`."""
    return lattice.leq(a, b)


def lt(lattice: JoinSemilattice, a: LatticeElement, b: LatticeElement) -> bool:
    """Module-level alias of :meth:`JoinSemilattice.lt`."""
    return lattice.lt(a, b)


def comparable(lattice: JoinSemilattice, a: LatticeElement, b: LatticeElement) -> bool:
    """Module-level alias of :meth:`JoinSemilattice.comparable`."""
    return lattice.comparable(a, b)
