"""Power-set lattice with union as join (Figure 1 of the paper).

This is the lattice the paper uses throughout: "In the rest of the paper we
will assume that L is a semi-lattice over sets (V is a set of sets) and + is
the set union operation.  This is not restrictive: any join semi-lattice is
isomorphic to a semi-lattice of sets with set union as join" (Section 3.1).

Elements are represented as ``frozenset`` instances so they are hashable and
immutable.  :class:`SetLattice` optionally restricts the universe of allowed
members, which is what the breadth experiment (E9) and the admissibility
filter for Byzantine proposals rely on.
"""

from __future__ import annotations
from collections.abc import Iterable

from typing import Any

from repro.lattice.base import JoinSemilattice, LatticeElement

#: Convenience alias for elements of :class:`SetLattice`.
FrozenSetElement = frozenset[Any]


class SetLattice(JoinSemilattice):
    """The join semilattice of finite sets ordered by inclusion.

    Parameters
    ----------
    universe:
        Optional iterable restricting the allowed set members.  When given,
        :meth:`is_element` rejects sets containing members outside the
        universe — this models the "admissible command" filter used by the
        RSM, and lets experiments compute the exact lattice breadth
        (``breadth == |universe|`` for a power-set lattice, Section 2).
    """

    def __init__(self, universe: Iterable[Any] | None = None) -> None:
        self._universe: frozenset[Any] | None = (
            frozenset(universe) if universe is not None else None
        )

    # -- primitives ------------------------------------------------------------

    def bottom(self) -> FrozenSetElement:
        """The empty set."""
        return frozenset()

    def join(self, a: LatticeElement, b: LatticeElement) -> FrozenSetElement:
        """Set union."""
        return frozenset(a) | frozenset(b)

    def is_element(self, value: Any) -> bool:
        """A value is an element iff it is a set-like of hashable members
        drawn from the universe (when a universe is configured)."""
        if not isinstance(value, (set, frozenset)):
            return False
        if self._universe is None:
            return True
        return frozenset(value) <= self._universe

    # -- helpers ---------------------------------------------------------------

    def lift(self, value: Any) -> FrozenSetElement:
        """Inject a single member (or an iterable of members) into the lattice.

        ``lift(x)`` returns ``{x}`` for a scalar ``x``; sets/frozensets are
        normalised to ``frozenset``.
        """
        if isinstance(value, (set, frozenset)):
            element = frozenset(value)
        else:
            element = frozenset([value])
        if not self.is_element(element):
            raise ValueError(f"{value!r} is outside the lattice universe")
        return element

    @property
    def universe(self) -> frozenset[Any] | None:
        """The configured universe of members, or ``None`` if unbounded."""
        return self._universe

    def breadth(self) -> int | None:
        """Breadth of the lattice (Section 2, footnote 1).

        For the power set of ``k`` distinct values the breadth is exactly
        ``k``.  ``None`` is returned for an unbounded universe (infinite
        breadth), which is precisely the situation in which the
        Nowak–Rybicki specification becomes impossible to implement.
        """
        if self._universe is None:
            return None
        return len(self._universe)

    def describe(self) -> str:
        if self._universe is None:
            return "SetLattice(unbounded)"
        return f"SetLattice(|universe|={len(self._universe)})"
