"""Map lattice: pointwise join of a value lattice, keyed by arbitrary keys.

``MapLattice(inner)`` is the lattice of finite partial maps ``K -> V_inner``
ordered pointwise: ``m1 <= m2`` iff every key of ``m1`` is present in ``m2``
with ``m1[k] <= m2[k]`` in the inner lattice.  The join merges key sets and
joins values pointwise.

This is the standard construction for state-based CRDT composition (e.g. a
map of named G-counters) and is used by the RSM examples to host multiple
replicated objects behind a single GWTS instance.
"""

from __future__ import annotations
from collections.abc import Mapping

from typing import Any

from repro.lattice.base import JoinSemilattice, LatticeElement

#: Map elements are canonicalised as sorted tuples of (key, inner_element).
MapElement = tuple[tuple[Any, LatticeElement], ...]


class MapLattice(JoinSemilattice):
    """Finite partial maps into an inner join semilattice, joined pointwise."""

    def __init__(self, inner: JoinSemilattice) -> None:
        self._inner = inner

    @property
    def inner(self) -> JoinSemilattice:
        """The lattice of the map's values."""
        return self._inner

    def bottom(self) -> MapElement:
        """The empty map."""
        return ()

    def join(self, a: LatticeElement, b: LatticeElement) -> MapElement:
        merged = dict(a)
        for key, value in b:
            if key in merged:
                merged[key] = self._inner.join(merged[key], value)
            else:
                merged[key] = value
        return self._canonical(merged)

    def is_element(self, value: Any) -> bool:
        if not isinstance(value, tuple):
            return False
        try:
            return all(self._inner.is_element(inner_value) for _key, inner_value in value)
        except (TypeError, ValueError):
            return False

    # -- helpers ---------------------------------------------------------------

    def lift(self, value: Any) -> MapElement:
        """Inject a ``{key: inner_value}`` mapping, lifting inner values too."""
        if isinstance(value, Mapping):
            lifted = {key: self._inner.lift(inner) for key, inner in value.items()}
            return self._canonical(lifted)
        if self.is_element(value):
            return self._canonical(dict(value))
        raise ValueError(f"{value!r} is not a valid map element")

    def get(self, element: LatticeElement, key: Any) -> LatticeElement:
        """Look up ``key`` in ``element``; missing keys read as inner bottom."""
        for entry_key, inner_value in element:
            if entry_key == key:
                return inner_value
        return self._inner.bottom()

    def set_entry(self, element: LatticeElement, key: Any, value: LatticeElement) -> MapElement:
        """Return ``element`` joined with the singleton map ``{key: value}``."""
        return self.join(element, self._canonical({key: value}))

    @staticmethod
    def _canonical(entries: Mapping[Any, LatticeElement]) -> MapElement:
        return tuple(sorted(entries.items(), key=lambda item: repr(item[0])))

    def describe(self) -> str:
        return f"MapLattice({self._inner.describe()})"
