"""Declarative exploration campaigns: a JSON/TOML file is the whole run.

A campaign file names an exploration configuration once — budget, seed,
coverage feedback, per-job timeout and the axis menus — so CI, nightly jobs
and humans run the *same* campaign by pointing ``python -m repro explore
--campaign FILE`` at the same committed file, instead of each re-deriving a
flag soup.  The parsed campaign rides in the artifact's ``config.explore``
section, making every result file self-describing.

File format (TOML shown; JSON carries the identical keys)::

    name = "wire-faults-smoke"           # required
    description = "..."                  # optional, documentation only
    budget = 25                          # scenarios to run (default 25)
    seed = 2026                          # campaign seed (default 0)
    coverage = true                      # coverage-guided feedback (default false)
    batch = 5                            # feedback batch size (default 8)
    quick = true                         # reduced per-scenario workloads
    timeout_s = 60.0                     # hard per-job timeout
    mutant = ""                          # optional known-bad canary variant

    [axes]                               # optional menu overrides; every
    protocols = ["sbs", "gsbs"]          # entry must parse.  Omitted axes
    wire = ["flip:0.3", "tamper-value:0.5"]  # keep the built-in menus.
    # schedulers = [...], fault_plans = [...]

TOML needs Python 3.11+ (stdlib ``tomllib``); on older interpreters the
loader says so loudly and JSON campaigns still work.  Unknown keys are
errors — a typo'd ``buget`` must not silently run the defaults.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - gated, not installed
    tomllib = None

from repro.engine.wire import WireError
from repro.engine.wire_faults import parse_wire_faults
from repro.explore.scenarios import MENU_KEYS, MUTANTS, PROTOCOL_BEHAVIOURS

_TOP_KEYS = frozenset(
    {"name", "description", "budget", "seed", "coverage", "batch",
     "quick", "timeout_s", "mutant", "axes"}
)


@dataclass(frozen=True)
class Campaign:
    """One parsed campaign file (see the module docstring for the format)."""

    name: str
    description: str = ""
    budget: int = 25
    seed: int = 0
    coverage: bool = False
    batch: int = 8
    quick: bool = False
    timeout_s: float | None = None
    mutant: str = ""
    axes: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def menus(self) -> dict[str, tuple[str, ...]] | None:
        """The axis menus for :class:`~repro.explore.scenarios.ScenarioSampler`."""
        return dict(self.axes) or None

    def to_config(self) -> dict[str, Any]:
        """JSON-ready form embedded in the artifact's ``config.explore``."""
        return {
            "name": self.name,
            "description": self.description,
            "budget": self.budget,
            "seed": self.seed,
            "coverage": self.coverage,
            "batch": self.batch,
            "quick": self.quick,
            "timeout_s": self.timeout_s,
            "mutant": self.mutant,
            "axes": {key: list(values) for key, values in sorted(self.axes.items())},
        }


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"bad campaign: {message}")


def campaign_from_dict(data: Any) -> Campaign:
    """Validate a decoded campaign mapping; loud on any malformation."""
    _require(isinstance(data, dict), f"expected a mapping, got {type(data).__name__}")
    unknown = sorted(set(data) - _TOP_KEYS)
    _require(not unknown, f"unknown keys {unknown}; known: {', '.join(sorted(_TOP_KEYS))}")
    name = data.get("name")
    _require(isinstance(name, str) and name.strip(), "a non-empty string 'name' is required")
    description = data.get("description", "")
    _require(isinstance(description, str), "'description' must be a string")
    budget = data.get("budget", 25)
    _require(isinstance(budget, int) and not isinstance(budget, bool) and budget >= 1,
             f"'budget' must be an int >= 1, got {budget!r}")
    seed = data.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             f"'seed' must be an int, got {seed!r}")
    coverage = data.get("coverage", False)
    _require(isinstance(coverage, bool), f"'coverage' must be a bool, got {coverage!r}")
    batch = data.get("batch", 8)
    _require(isinstance(batch, int) and not isinstance(batch, bool) and batch >= 1,
             f"'batch' must be an int >= 1, got {batch!r}")
    quick = data.get("quick", False)
    _require(isinstance(quick, bool), f"'quick' must be a bool, got {quick!r}")
    timeout_s = data.get("timeout_s")
    if timeout_s is not None:
        _require(isinstance(timeout_s, (int, float)) and not isinstance(timeout_s, bool)
                 and timeout_s > 0, f"'timeout_s' must be a positive number, got {timeout_s!r}")
        timeout_s = float(timeout_s)
    mutant = data.get("mutant", "")
    _require(isinstance(mutant, str), f"'mutant' must be a string, got {mutant!r}")
    _require(not mutant or mutant in MUTANTS,
             f"unknown mutant {mutant!r}; known: {', '.join(MUTANTS)}")
    axes = _validate_axes(data.get("axes", {}))
    return Campaign(
        name=name.strip(), description=description, budget=budget, seed=seed,
        coverage=coverage, batch=batch, quick=quick, timeout_s=timeout_s,
        mutant=mutant, axes=axes,
    )


def _validate_axes(raw: Any) -> dict[str, tuple[str, ...]]:
    _require(isinstance(raw, dict), f"'axes' must be a table/object, got {type(raw).__name__}")
    unknown = sorted(set(raw) - set(MENU_KEYS))
    _require(not unknown, f"unknown axes {unknown}; known: {', '.join(MENU_KEYS)}")
    axes: dict[str, tuple[str, ...]] = {}
    for key, values in raw.items():
        _require(isinstance(values, list) and values
                 and all(isinstance(v, str) for v in values),
                 f"axis {key!r} must be a non-empty list of strings")
        if key == "protocols":
            bad = sorted(set(values) - set(PROTOCOL_BEHAVIOURS))
            _require(not bad, f"unknown protocols {bad}; known: "
                              f"{', '.join(PROTOCOL_BEHAVIOURS)}")
        if key == "wire":
            for value in values:
                if not value:
                    continue
                try:
                    parse_wire_faults(value)
                except WireError as exc:
                    raise ValueError(f"bad campaign: wire axis {value!r}: {exc}") from None
        axes[key] = tuple(values)
    return axes


def load_campaign(path: str | Path) -> Campaign:
    """Load and validate a campaign file (``.toml`` or ``.json``)."""
    path = Path(path)
    suffix = path.suffix.lower()
    text = path.read_text()
    if suffix == ".toml":
        if tomllib is None:  # pragma: no cover - Python < 3.11 only
            raise ValueError(
                f"{path}: TOML campaigns need Python 3.11+ (tomllib); "
                f"rewrite the campaign as JSON"
            )
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"{path}: invalid TOML ({exc})") from None
    elif suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: invalid JSON ({exc})") from None
    else:
        raise ValueError(f"{path}: campaign files are .toml or .json, got {suffix!r}")
    try:
        return campaign_from_dict(data)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
