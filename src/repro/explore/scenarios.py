"""Randomized scenario specs: generation, execution, uniform outcomes.

A :class:`ScenarioSpec` is a fully JSON-able description of one randomized
run: protocol, cluster shape, Byzantine behaviour mix, scheduler spec,
fault-plan spec, rounds and the RNG seed.  Because every field round-trips
through strings and ints, a spec travels unchanged through the
orchestrator's :class:`~repro.orchestrator.jobs.JobSpec` params, a
``repro-results/v1`` artifact, and a ``python -m repro run SCENARIO``
replay command line.

:func:`generate_scenarios` derives a whole budget of specs from a single
seed (the explorer's only source of randomness), and
:func:`run_scenario_experiment` — registered as the hidden ``SCENARIO``
experiment — executes one spec through the harness scenario builders and
judges it with the invariant library.  ``ok`` is ``True`` iff no invariant
was violated, which is what makes the orchestrator's exit codes and
artifact totals meaningful for fuzzing.

The ``mutant`` field re-enables the deliberately weakened WTS variants of
:mod:`repro.core.ablations` (no wait-till-safe, plain disclosure, both).
Mutants exist so the explorer can prove it is not blind: a seeded mutant run
*must* surface an invariant violation, and the shrinker must reduce it —
``tests/explore`` pins exactly that.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any

from repro.byzantine.behaviors import (
    AlwaysAckAcceptor,
    CrashByzantine,
    EquivocatingGWTSProposer,
    EquivocatingProposer,
    FastForwardGWTS,
    FlipFloppingAcceptor,
    ForgedSafetyByzantine,
    GarbageProposer,
    NackSpamAcceptor,
    SbSEquivocatingProposer,
    SilentByzantine,
    ValueInjectorProposer,
)
from repro.core.wts import WTSProcess
from repro.explore.invariants import check_scenario_invariants
from repro.harness.workloads import (
    run_gsbs_scenario,
    run_gwts_scenario,
    run_rsm_scenario,
    run_sbs_scenario,
    run_wts_scenario,
)
from repro.metrics.report import format_table
from repro.rsm.crdt import GCounterObject, GSetObject
from repro.sim.axes import describe_axes, parse_fault_plan, parse_scheduler, scheduler_spec_is_adversarial

#: Behaviour name -> factory builder.  Each builder takes the spec's
#: ``rounds`` (generalized behaviours pace themselves by it) and returns a
#: scenario-builder-compatible factory ``(pid, lattice, members, f, **kw)``.
_BEHAVIOUR_BUILDERS = {
    "silent": lambda rounds: (lambda pid, lat, members, f, **kw: SilentByzantine(pid)),
    "crash": lambda rounds: (
        lambda pid, lat, members, f, **kw: CrashByzantine(
            WTSProcess(pid, lat, members, f, proposal=frozenset({f"crash-{pid}"})),
            crash_after_deliveries=5,
        )
    ),
    "flip-flop": lambda rounds: (
        lambda pid, lat, members, f, **kw: FlipFloppingAcceptor(pid, lat, members, f)
    ),
    "nack-spam": lambda rounds: (
        lambda pid, lat, members, f, **kw: NackSpamAcceptor(pid, lat, members, f)
    ),
    "always-ack": lambda rounds: (
        lambda pid, lat, members, f, **kw: AlwaysAckAcceptor(pid, lat, members, f)
    ),
    "equivocator": lambda rounds: (
        lambda pid, lat, members, f, **kw: EquivocatingProposer(
            pid, lat, members, f,
            value_a=frozenset({"eq-a"}), value_b=frozenset({"eq-b"}),
        )
    ),
    "value-injector": lambda rounds: (
        lambda pid, lat, members, f, **kw: ValueInjectorProposer(
            pid, lat, members, f, proposal=frozenset({f"byz-{pid}"})
        )
    ),
    "garbage": lambda rounds: (
        lambda pid, lat, members, f, **kw: GarbageProposer(pid, lat, members, f)
    ),
    "sbs-equivocator": lambda rounds: (
        lambda pid, lat, members, f, **kw: SbSEquivocatingProposer(
            pid, lat, members, f,
            value_a=frozenset({"eq-a"}), value_b=frozenset({"eq-b"}), **kw,
        )
    ),
    "forged-safety": lambda rounds: (
        lambda pid, lat, members, f, **kw: ForgedSafetyByzantine(
            pid, lat, members, victim=members[0], injected=frozenset({f"forged-{pid}"})
        )
    ),
    "fast-forward": lambda rounds: (
        lambda pid, lat, members, f, **kw: FastForwardGWTS(
            pid, lat, members,
            rounds_ahead=rounds + 3,
            values=[frozenset({f"byz-ff-{pid}-{k}"}) for k in range(3)],
        )
    ),
    "gwts-equivocator": lambda rounds: (
        lambda pid, lat, members, f, **kw: EquivocatingGWTSProposer(
            pid, lat, members, f,
            max_rounds=rounds,
            equivocation_pool=[frozenset({f"eqg-{pid}-{k}"}) for k in range(2)],
        )
    ),
}

#: Which behaviours speak which protocol (a WTS-subclass attacker makes no
#: sense inside an SbS cluster, and vice versa).
PROTOCOL_BEHAVIOURS: dict[str, tuple[str, ...]] = {
    "wts": ("silent", "crash", "flip-flop", "nack-spam", "always-ack",
            "equivocator", "value-injector", "garbage"),
    "sbs": ("silent", "sbs-equivocator", "forged-safety"),
    "gwts": ("silent", "fast-forward", "gwts-equivocator"),
    "gsbs": ("silent",),
    "rsm": ("silent",),
}

#: The invariant set each protocol is judged by.
PROTOCOL_KINDS = {"wts": "la", "sbs": "la", "gwts": "gla", "gsbs": "gla", "rsm": "rsm"}

#: Scheduler axis values sampled by the generator.  The worst-case starve
#: delay is kept moderate so a fuzzing run stays fast; it is still an order
#: of magnitude beyond the fast path.  The worst-case entry starves the
#: *quorum-critical* link set computed from each scenario's membership
#: (n, f) — the strongest finite starvation the thresholds allow — instead
#: of a fixed victim list.
_SCHEDULER_MENU = ("", "", "random:spread=3", "random:spread=10",
                   "worst-case:victims=quorum,starve=60,fast=1")
#: Fault-plan axis values sampled by the generator.
_FAULT_PLAN_MENU = ("", "", "churn", "partition@3-15", "crash:0@5-25")

#: RSM runs involve client retry timers, so keep their axes gentle: a
#: starved replica plus aggressive retries makes runs long without testing
#: anything the LA protocols' worst-case axis does not.  The crash window
#: stays well inside the replicas' round budget — replicas execute a finite
#: GWTS prefix, and a fault outlasting it wedges late reads by truncation,
#: not by a protocol defect.
_RSM_SCHEDULER_MENU = ("", "random:spread=3")
_RSM_FAULT_PLAN_MENU = ("", "crash:1@20-60")

#: Known-bad WTS variants (see :mod:`repro.core.ablations`) and the
#: adversary that triggers each one's targeted property violation.
MUTANTS: dict[str, str] = {
    "no-wait-till-safe": "nack-spam",
    "plain-disclosure": "equivocator",
    "no-defences": "equivocator",
}


@dataclass(frozen=True)
class ScenarioSpec:
    """One randomized scenario, fully described by JSON-able fields."""

    protocol: str = "wts"
    n: int = 4
    f: int = 1
    byzantine: tuple[str, ...] = ()
    scheduler: str = ""
    fault_plan: str = ""
    rounds: int = 3
    mutant: str = ""
    seed: int = 0

    def params(self) -> dict[str, Any]:
        """The spec as ``SCENARIO`` experiment params (seed travels separately)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "byzantine": "+".join(self.byzantine),
            "scheduler": self.scheduler,
            "fault_plan": self.fault_plan,
            "rounds": self.rounds,
            "mutant": self.mutant,
        }

    def replay_command(self, quick: bool = False) -> str:
        """A copy-pastable deterministic replay of exactly this scenario.

        ``quick`` must match the campaign's flag: quick mode changes the
        generalized workload size, so a reproducer found under ``--quick``
        only replays under ``--quick``.
        """
        parts = [f"PYTHONPATH=src python -m repro run SCENARIO --seed {self.seed}"]
        if quick:
            parts.append("--quick")
        parts += [
            f"--param {name}={value}"
            for name, value in self.params().items()
            if value not in ("", 0) or name in ("n", "f", "rounds", "protocol")
        ]
        return " ".join(parts)

    def describe(self) -> str:
        byz = "+".join(self.byzantine) or "none"
        extra = f", mutant={self.mutant}" if self.mutant else ""
        return (
            f"{self.protocol} n={self.n} f={self.f} seed={self.seed} "
            f"byzantine={byz}, {describe_axes(self.scheduler, self.fault_plan)}{extra}"
        )

    def replace(self, **changes: Any) -> ScenarioSpec:
        return dataclasses.replace(self, **changes)


def validate_spec(spec: ScenarioSpec) -> None:
    """Reject structurally impossible specs before a worker touches them."""
    menu = PROTOCOL_BEHAVIOURS.get(spec.protocol)
    if menu is None:
        raise ValueError(
            f"unknown protocol {spec.protocol!r}; known: {', '.join(PROTOCOL_BEHAVIOURS)}"
        )
    if spec.f < 0:
        raise ValueError(f"f must be non-negative, got {spec.f}")
    if spec.n < 3 * spec.f + 1:
        raise ValueError(
            f"n={spec.n} cannot tolerate f={spec.f} (needs n >= 3f+1 = {3 * spec.f + 1})"
        )
    if len(spec.byzantine) > spec.f:
        raise ValueError(
            f"{len(spec.byzantine)} Byzantine behaviours exceed f={spec.f}"
        )
    for name in spec.byzantine:
        if name not in menu:
            raise ValueError(
                f"behaviour {name!r} does not speak {spec.protocol} "
                f"(menu: {', '.join(menu)})"
            )
    if spec.mutant and spec.mutant not in MUTANTS:
        raise ValueError(f"unknown mutant {spec.mutant!r}; known: {', '.join(MUTANTS)}")
    if spec.mutant and spec.protocol != "wts":
        raise ValueError("mutants are WTS ablations; use protocol=wts")
    if spec.rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {spec.rounds}")
    # Fail fast on malformed axis specs (same parsers the builders use).
    pids = [f"p{i}" for i in range(spec.n)]
    parse_scheduler(spec.scheduler, pids=pids, f=spec.f)
    parse_fault_plan(spec.fault_plan, pids=pids,
                     correct=pids[: spec.n - len(spec.byzantine)])


def generate_scenarios(seed: int, budget: int, mutant: str = "") -> list[ScenarioSpec]:
    """Derive ``budget`` scenario specs deterministically from one seed.

    With ``mutant`` set, every spec runs the named weakened WTS variant with
    its triggering adversary in the mix — the self-test mode proving the
    invariant checkers still catch known-bad implementations.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    if mutant and mutant not in MUTANTS:
        raise ValueError(f"unknown mutant {mutant!r}; known: {', '.join(MUTANTS)}")
    rng = random.Random(seed)
    specs: list[ScenarioSpec] = []
    for _ in range(budget):
        if mutant:
            spec = _generate_mutant_spec(rng, mutant)
        else:
            spec = _generate_spec(rng)
        validate_spec(spec)
        specs.append(spec)
    return specs


def _generate_spec(rng: random.Random) -> ScenarioSpec:
    protocol = rng.choice(("wts", "wts", "sbs", "gwts", "gwts", "gsbs", "rsm"))
    f = rng.choice((1, 1, 2)) if protocol in ("wts", "sbs") else 1
    n = 3 * f + 1 + rng.choice((0, 0, 1))
    menu = PROTOCOL_BEHAVIOURS[protocol]
    byzantine = tuple(rng.choice(menu) for _ in range(rng.randint(0, f)))
    if protocol == "rsm":
        scheduler = rng.choice(_RSM_SCHEDULER_MENU)
        fault_plan = rng.choice(_RSM_FAULT_PLAN_MENU)
    else:
        scheduler = rng.choice(_SCHEDULER_MENU)
        fault_plan = rng.choice(_FAULT_PLAN_MENU)
    return ScenarioSpec(
        protocol=protocol,
        n=n,
        f=f,
        byzantine=byzantine,
        scheduler=scheduler,
        fault_plan=fault_plan,
        rounds=rng.choice((2, 3)) if protocol in ("gwts", "gsbs") else 3,
        seed=rng.randrange(1_000_000),
    )


def _generate_mutant_spec(rng: random.Random, mutant: str) -> ScenarioSpec:
    trigger = MUTANTS[mutant]
    extras = ("silent",) if rng.random() < 0.3 else ()
    f = 1 + len(extras)
    return ScenarioSpec(
        protocol="wts",
        n=3 * f + 1 + rng.choice((0, 1)),
        f=f,
        byzantine=(trigger,) + extras,
        scheduler=rng.choice(_SCHEDULER_MENU),
        fault_plan=rng.choice(_FAULT_PLAN_MENU),
        mutant=mutant,
        seed=rng.randrange(1_000_000),
    )


def _mutant_process_class(mutant: str) -> type:
    # Imported here, not at module level: the ablations are deliberately
    # incorrect implementations and stay out of import-time surfaces.
    from repro.core.ablations import (
        NoDefencesWTSProcess,
        NoSafetyWTSProcess,
        PlainDisclosureWTSProcess,
    )

    return {
        "no-wait-till-safe": NoSafetyWTSProcess,
        "plain-disclosure": PlainDisclosureWTSProcess,
        "no-defences": NoDefencesWTSProcess,
    }[mutant]


def _run_spec(spec: ScenarioSpec, quick: bool, backend: str = "kernel"):
    """Execute one spec; returns ``(scenario, kind, strict)``.

    ``strict=False`` relaxes the invariant that is only *eventual* over a
    perturbed finite prefix (inclusivity for generalized runs, operation
    liveness for RSM runs) — the same treatment E12 gives its churn
    configurations.
    """
    factories = [_BEHAVIOUR_BUILDERS[name](spec.rounds) for name in spec.byzantine]
    common = dict(
        n=spec.n,
        f=spec.f,
        seed=spec.seed,
        byzantine_factories=factories,
        scheduler=spec.scheduler,
        fault_plan=spec.fault_plan,
        backend=backend,
    )
    if spec.protocol == "wts":
        if spec.mutant:
            # Mirror E11: run the weakened variant to quiescence under a
            # message cap so liveness-destroying mutants terminate and
            # value-laundering mutants get time to contaminate decisions.
            scenario = run_wts_scenario(
                process_class=_mutant_process_class(spec.mutant),
                run_to_quiescence=True,
                max_messages=30_000,
                **common,
            )
        else:
            scenario = run_wts_scenario(**common)
        return scenario, "la", True
    if spec.protocol == "sbs":
        return run_sbs_scenario(**common), "la", True
    if spec.protocol in ("gwts", "gsbs"):
        runner = run_gwts_scenario if spec.protocol == "gwts" else run_gsbs_scenario
        scenario = runner(values_per_process=1 if quick else 2, rounds=spec.rounds, **common)
        # Inclusivity over the finite prefix is only guaranteed when the
        # environment does not hold traffic for long stretches.
        strict = spec.fault_plan in ("", "none") and not (
            scheduler_spec_is_adversarial(spec.scheduler)
        )
        return scenario, "gla", strict
    if spec.protocol == "rsm":
        counter = GCounterObject("hits")
        gset = GSetObject("tags")
        scripts = {
            "client0": [("update", counter.op_inc(1)), ("update", counter.op_inc(2)), ("read",)],
            "client1": [("update", gset.op_add("tag-a")), ("read",)],
        }
        scenario = run_rsm_scenario(
            n_replicas=spec.n,
            f=spec.f,
            client_scripts=scripts,
            byzantine_replica_factories=factories,
            byzantine_client_payloads={"badclient": ["junk-0", "junk-1"]},
            rounds=12,
            seed=spec.seed,
            scheduler=spec.scheduler,
            fault_plan=spec.fault_plan,
            backend=backend,
        )
        # Replicas execute a finite GWTS prefix; a fault window can eat
        # rounds on empty batches, so operation liveness is only strict on
        # an unperturbed run (read safety is always checked).
        return scenario, "rsm", spec.fault_plan in ("", "none")
    raise ValueError(f"unknown protocol {spec.protocol!r}")  # validate_spec prevents this


def run_scenario_spec(
    spec: ScenarioSpec, quick: bool = False, backend: str = "kernel"
) -> dict[str, Any]:
    """Run one spec and return the uniform experiment outcome dictionary."""
    validate_spec(spec)
    scenario, kind, strict = _run_spec(spec, quick, backend)
    violations = check_scenario_invariants(
        scenario,
        kind,
        require_liveness=strict if kind == "rsm" else True,
        require_inclusivity=strict,
    )
    ok = not violations
    rows = [
        (invariant, len(messages), messages[0])
        for invariant, messages in sorted(violations.items())
    ] or [("(all invariants)", 0, "no violations")]
    headers = ["invariant", "#violations", "first violation"]
    return {
        "experiment": "SCENARIO",
        "expected": "all protocol invariants hold on a randomized scenario",
        "spec": spec.params() | {"seed": spec.seed},
        "kind": kind,
        "violations": violations,
        "replay": spec.replay_command(quick=quick),
        "headers": headers,
        "rows": rows,
        "table": format_table(headers, rows, title=f"SCENARIO: {spec.describe()}"),
        "check": {"ok": ok, "violations": violations},
        "ok": ok,
        "headline": {
            "violated_invariants": float(len(violations)),
            "decided": float(sum(1 for decs in scenario.decisions().values() if decs)),
        },
        "latency": {},
    }


def run_scenario_experiment(
    protocol: str = "wts",
    n: int = 4,
    f: int = 1,
    byzantine: str = "",
    scheduler: str = "",
    fault_plan: str = "",
    rounds: int = 3,
    mutant: str = "",
    backend: str = "kernel",
    seed: int = 0,
    quick: bool = False,
) -> dict[str, Any]:
    """The hidden ``SCENARIO`` experiment: one randomized-explorer scenario.

    Every parameter mirrors a :class:`ScenarioSpec` field (``byzantine`` is
    ``+``-joined), so ``repro run SCENARIO --seed S --param ...`` replays
    any scenario the explorer reports — including shrunk reproducers.
    """
    spec = ScenarioSpec(
        protocol=protocol,
        n=n,
        f=f,
        byzantine=tuple(name for name in byzantine.split("+") if name),
        scheduler=scheduler,
        fault_plan=fault_plan,
        rounds=rounds,
        mutant=mutant,
        seed=seed,
    )
    return run_scenario_spec(spec, quick=quick, backend=backend)


def spec_from_params(seed: int, params: dict[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from ``SCENARIO`` job params."""
    byzantine = params.get("byzantine", "")
    if isinstance(byzantine, str):
        byzantine = tuple(name for name in byzantine.split("+") if name)
    return ScenarioSpec(
        protocol=params.get("protocol", "wts"),
        n=int(params.get("n", 4)),
        f=int(params.get("f", 1)),
        byzantine=tuple(byzantine),
        scheduler=params.get("scheduler", ""),
        fault_plan=params.get("fault_plan", ""),
        rounds=int(params.get("rounds", 3)),
        mutant=params.get("mutant", ""),
        seed=seed,
    )
