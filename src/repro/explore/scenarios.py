"""Randomized scenario specs: generation, execution, uniform outcomes.

A :class:`ScenarioSpec` is a fully JSON-able description of one randomized
run: protocol, cluster shape, Byzantine behaviour mix, scheduler spec,
fault-plan spec, rounds and the RNG seed.  Because every field round-trips
through strings and ints, a spec travels unchanged through the
orchestrator's :class:`~repro.orchestrator.jobs.JobSpec` params, a
``repro-results/v1`` artifact, and a ``python -m repro run SCENARIO``
replay command line.

:func:`generate_scenarios` derives a whole budget of specs from a single
seed (the explorer's only source of randomness), and
:func:`run_scenario_experiment` — registered as the hidden ``SCENARIO``
experiment — executes one spec through the harness scenario builders and
judges it with the invariant library.  ``ok`` is ``True`` iff no invariant
was violated, which is what makes the orchestrator's exit codes and
artifact totals meaningful for fuzzing.

The ``mutant`` field re-enables the deliberately weakened variants of
:mod:`repro.core.ablations` (no wait-till-safe, plain disclosure, both, and
— for the wire axis — a signature-blind PKI).  Mutants exist so the
explorer can prove it is not blind: a seeded mutant run *must* surface an
invariant violation, and the shrinker must reduce it — ``tests/explore``
pins exactly that.

The ``wire`` field is the wire-level fault axis (PR 8): a non-empty
:func:`~repro.engine.wire_faults.parse_wire_faults` DSL string moves the
scenario onto the async backend's real TCP transport with a
:class:`~repro.engine.wire_faults.FaultyCodec` forging frames on the send
path.  Wire scenarios run the *signed-message* protocols (SbS/GSbS) with no
simulated scheduler, fault plan or in-process Byzantine processes — on this
axis the wire itself is the adversary, and the claim under test is the
paper's: nothing forged on the wire may ever influence a decision.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any

from repro.byzantine.behaviors import (
    AlwaysAckAcceptor,
    CrashByzantine,
    EquivocatingGWTSProposer,
    EquivocatingProposer,
    FastForwardGWTS,
    FlipFloppingAcceptor,
    ForgedSafetyByzantine,
    GarbageProposer,
    NackSpamAcceptor,
    SbSEquivocatingProposer,
    SilentByzantine,
    ValueInjectorProposer,
)
from repro.core.wts import WTSProcess
from repro.engine.wire import WireError
from repro.engine.wire_faults import parse_wire_faults
from repro.explore.invariants import check_scenario_invariants
from repro.harness.workloads import (
    run_gsbs_scenario,
    run_gwts_scenario,
    run_rsm_scenario,
    run_sbs_scenario,
    run_sharded_rsm_scenario,
    run_wts_scenario,
)
from repro.metrics.report import format_table
from repro.rsm.crdt import GCounterObject, GSetObject
from repro.sim.axes import describe_axes, parse_fault_plan, parse_scheduler, scheduler_spec_is_adversarial

#: Behaviour name -> factory builder.  Each builder takes the spec's
#: ``rounds`` (generalized behaviours pace themselves by it) and returns a
#: scenario-builder-compatible factory ``(pid, lattice, members, f, **kw)``.
_BEHAVIOUR_BUILDERS = {
    "silent": lambda rounds: (lambda pid, lat, members, f, **kw: SilentByzantine(pid)),
    "crash": lambda rounds: (
        lambda pid, lat, members, f, **kw: CrashByzantine(
            WTSProcess(pid, lat, members, f, proposal=frozenset({f"crash-{pid}"})),
            crash_after_deliveries=5,
        )
    ),
    "flip-flop": lambda rounds: (
        lambda pid, lat, members, f, **kw: FlipFloppingAcceptor(pid, lat, members, f)
    ),
    "nack-spam": lambda rounds: (
        lambda pid, lat, members, f, **kw: NackSpamAcceptor(pid, lat, members, f)
    ),
    "always-ack": lambda rounds: (
        lambda pid, lat, members, f, **kw: AlwaysAckAcceptor(pid, lat, members, f)
    ),
    "equivocator": lambda rounds: (
        lambda pid, lat, members, f, **kw: EquivocatingProposer(
            pid, lat, members, f,
            value_a=frozenset({"eq-a"}), value_b=frozenset({"eq-b"}),
        )
    ),
    "value-injector": lambda rounds: (
        lambda pid, lat, members, f, **kw: ValueInjectorProposer(
            pid, lat, members, f, proposal=frozenset({f"byz-{pid}"})
        )
    ),
    "garbage": lambda rounds: (
        lambda pid, lat, members, f, **kw: GarbageProposer(pid, lat, members, f)
    ),
    "sbs-equivocator": lambda rounds: (
        lambda pid, lat, members, f, **kw: SbSEquivocatingProposer(
            pid, lat, members, f,
            value_a=frozenset({"eq-a"}), value_b=frozenset({"eq-b"}), **kw,
        )
    ),
    "forged-safety": lambda rounds: (
        lambda pid, lat, members, f, **kw: ForgedSafetyByzantine(
            pid, lat, members, victim=members[0], injected=frozenset({f"forged-{pid}"})
        )
    ),
    "fast-forward": lambda rounds: (
        lambda pid, lat, members, f, **kw: FastForwardGWTS(
            pid, lat, members,
            rounds_ahead=rounds + 3,
            values=[frozenset({f"byz-ff-{pid}-{k}"}) for k in range(3)],
        )
    ),
    "gwts-equivocator": lambda rounds: (
        lambda pid, lat, members, f, **kw: EquivocatingGWTSProposer(
            pid, lat, members, f,
            max_rounds=rounds,
            equivocation_pool=[frozenset({f"eqg-{pid}-{k}"}) for k in range(2)],
        )
    ),
}

#: Which behaviours speak which protocol (a WTS-subclass attacker makes no
#: sense inside an SbS cluster, and vice versa).
PROTOCOL_BEHAVIOURS: dict[str, tuple[str, ...]] = {
    "wts": ("silent", "crash", "flip-flop", "nack-spam", "always-ack",
            "equivocator", "value-injector", "garbage"),
    "sbs": ("silent", "sbs-equivocator", "forged-safety"),
    "gwts": ("silent", "fast-forward", "gwts-equivocator"),
    "gsbs": ("silent",),
    "rsm": ("silent",),
}

#: The invariant set each protocol is judged by.
PROTOCOL_KINDS = {"wts": "la", "sbs": "la", "gwts": "gla", "gsbs": "gla", "rsm": "rsm"}

#: Scheduler axis values sampled by the generator.  The worst-case starve
#: delay is kept moderate so a fuzzing run stays fast; it is still an order
#: of magnitude beyond the fast path.  The worst-case entry starves the
#: *quorum-critical* link set computed from each scenario's membership
#: (n, f) — the strongest finite starvation the thresholds allow — instead
#: of a fixed victim list.
_SCHEDULER_MENU = ("", "", "random:spread=3", "random:spread=10",
                   "worst-case:victims=quorum,starve=60,fast=1")
#: Fault-plan axis values sampled by the generator.
_FAULT_PLAN_MENU = ("", "", "churn", "partition@3-15", "crash:0@5-25")

#: RSM runs involve client retry timers, so keep their axes gentle: a
#: starved replica plus aggressive retries makes runs long without testing
#: anything the LA protocols' worst-case axis does not.  The crash window
#: stays well inside the replicas' round budget — replicas execute a finite
#: GWTS prefix, and a fault outlasting it wedges late reads by truncation,
#: not by a protocol defect.
_RSM_SCHEDULER_MENU = ("", "random:spread=3")
_RSM_FAULT_PLAN_MENU = ("", "crash:1@20-60")

#: Protocols the wire axis applies to: the ones whose defence *is* the
#: signature scheme.  WTS/GWTS have no signed payloads for a tamperer to
#: attack, and RSM rides GWTS.
WIRE_PROTOCOLS = ("sbs", "gsbs")

#: Wire-fault axis values used by the coverage-weighted generator (and as
#: the default menu for campaign files that enable the wire axis without
#: naming their own values).  Mostly empty so plain simulated scenarios
#: stay the bulk of a mixed campaign; the non-empty entries cover the
#: framing-layer attacks (flip/trunc), the well-formed floods (dup/replay)
#: and the Byzantine mutations (tamper-*) on both framings.
WIRE_MENU = (
    "", "", "", "",
    "flip:0.3+trunc:0.3",
    "dup:0.3+replay:0.3",
    "tamper-value:0.4+tamper-sig:0.3",
    "tamper-value:0.5+framing:binary",
)

#: Known-bad variants (see :mod:`repro.core.ablations`) and the adversary
#: that triggers each one's targeted property violation.  The WTS ablations
#: are triggered by an in-process Byzantine behaviour; ``no-signatures``
#: (the blind PKI, ablation A4) is triggered by the *wire axis* — on-wire
#: tampering that an honest registry rejects must land in decisions once
#: verification is disabled, proving the wire-Byzantine test can fail.
MUTANTS: dict[str, str] = {
    "no-wait-till-safe": "nack-spam",
    "plain-disclosure": "equivocator",
    "no-defences": "equivocator",
    "no-signatures": "",
}

#: The protocol each mutant must run under (default: the WTS ablations).
MUTANT_PROTOCOLS: dict[str, str] = {"no-signatures": "sbs"}

#: Wire-fault menus for the ``no-signatures`` mutant: every entry carries a
#: tamper term (the attack verification is supposed to stop).
_NO_SIGNATURES_WIRE_MENU = (
    "tamper-value:0.6",
    "tamper-value:0.5+tamper-sig:0.4",
    "tamper-value:0.6+framing:binary",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One randomized scenario, fully described by JSON-able fields."""

    protocol: str = "wts"
    n: int = 4
    f: int = 1
    byzantine: tuple[str, ...] = ()
    scheduler: str = ""
    fault_plan: str = ""
    rounds: int = 3
    mutant: str = ""
    wire: str = ""
    #: Per-round proposal batch cap for the generalized protocols and the
    #: RSM (0 = unbatched, the historic behaviour).
    batch: int = 0
    #: RSM data-plane shards (1 = the single-group RSM; >1 splits the
    #: replica fleet into independent per-shard GWTS groups).
    shards: int = 1
    seed: int = 0

    def params(self) -> dict[str, Any]:
        """The spec as ``SCENARIO`` experiment params (seed travels separately)."""
        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "byzantine": "+".join(self.byzantine),
            "scheduler": self.scheduler,
            "fault_plan": self.fault_plan,
            "rounds": self.rounds,
            "mutant": self.mutant,
            "wire": self.wire,
            "batch": self.batch,
            "shards": self.shards,
        }

    def replay_command(self, quick: bool = False) -> str:
        """A copy-pastable deterministic replay of exactly this scenario.

        ``quick`` must match the campaign's flag: quick mode changes the
        generalized workload size, so a reproducer found under ``--quick``
        only replays under ``--quick``.
        """
        parts = [f"PYTHONPATH=src python -m repro run SCENARIO --seed {self.seed}"]
        if quick:
            parts.append("--quick")
        defaults = {"batch": 0, "shards": 1}
        parts += [
            f"--param {name}={value}"
            for name, value in self.params().items()
            if name in ("n", "f", "rounds", "protocol")
            or value not in ("", defaults.get(name, 0))
        ]
        return " ".join(parts)

    def describe(self) -> str:
        byz = "+".join(self.byzantine) or "none"
        extra = f", mutant={self.mutant}" if self.mutant else ""
        if self.wire:
            extra += f", wire={self.wire}"
        if self.batch:
            extra += f", batch={self.batch}"
        if self.shards > 1:
            extra += f", shards={self.shards}"
        return (
            f"{self.protocol} n={self.n} f={self.f} seed={self.seed} "
            f"byzantine={byz}, {describe_axes(self.scheduler, self.fault_plan)}{extra}"
        )

    def replace(self, **changes: Any) -> ScenarioSpec:
        return dataclasses.replace(self, **changes)


def validate_spec(spec: ScenarioSpec) -> None:
    """Reject structurally impossible specs before a worker touches them."""
    menu = PROTOCOL_BEHAVIOURS.get(spec.protocol)
    if menu is None:
        raise ValueError(
            f"unknown protocol {spec.protocol!r}; known: {', '.join(PROTOCOL_BEHAVIOURS)}"
        )
    if spec.f < 0:
        raise ValueError(f"f must be non-negative, got {spec.f}")
    if spec.n < 3 * spec.f + 1:
        raise ValueError(
            f"n={spec.n} cannot tolerate f={spec.f} (needs n >= 3f+1 = {3 * spec.f + 1})"
        )
    if len(spec.byzantine) > spec.f:
        raise ValueError(
            f"{len(spec.byzantine)} Byzantine behaviours exceed f={spec.f}"
        )
    for name in spec.byzantine:
        if name not in menu:
            raise ValueError(
                f"behaviour {name!r} does not speak {spec.protocol} "
                f"(menu: {', '.join(menu)})"
            )
    if spec.mutant and spec.mutant not in MUTANTS:
        raise ValueError(f"unknown mutant {spec.mutant!r}; known: {', '.join(MUTANTS)}")
    if spec.mutant:
        required = MUTANT_PROTOCOLS.get(spec.mutant, "wts")
        if spec.protocol != required:
            raise ValueError(
                f"mutant {spec.mutant!r} runs under protocol={required}, "
                f"got {spec.protocol!r}"
            )
    if spec.rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {spec.rounds}")
    if spec.batch < 0:
        raise ValueError(f"batch must be >= 0 (0 = unbatched), got {spec.batch}")
    if spec.batch and spec.protocol not in ("gwts", "gsbs", "rsm"):
        raise ValueError(
            f"batch applies to the generalized protocols (gwts/gsbs/rsm), "
            f"got protocol={spec.protocol!r}"
        )
    if spec.shards < 1:
        raise ValueError(f"shards must be >= 1, got {spec.shards}")
    if spec.shards > 1:
        if spec.protocol != "rsm":
            raise ValueError(
                f"shards > 1 runs the sharded RSM data plane, got "
                f"protocol={spec.protocol!r}"
            )
        if spec.byzantine or spec.mutant:
            raise ValueError(
                "sharded RSM scenarios drive correct replicas only (the "
                "sharded scenario builder has no per-shard Byzantine mix)"
            )
        if spec.n < spec.shards * (3 * spec.f + 1):
            raise ValueError(
                f"n={spec.n} cannot split into {spec.shards} shards of >= "
                f"3f+1 = {3 * spec.f + 1} replicas each"
            )
    _validate_wire_axis(spec)
    # Fail fast on malformed axis specs (same parsers the builders use).
    pids = [f"p{i}" for i in range(spec.n)]
    parse_scheduler(spec.scheduler, pids=pids, f=spec.f)
    parse_fault_plan(spec.fault_plan, pids=pids,
                     correct=pids[: spec.n - len(spec.byzantine)])


def _validate_wire_axis(spec: ScenarioSpec) -> None:
    if not spec.wire:
        if spec.mutant == "no-signatures":
            raise ValueError(
                "the no-signatures mutant needs a wire axis with a tamper-* "
                "term: it exists to prove on-wire tampering lands once "
                "verification is blind"
            )
        return
    if spec.protocol not in WIRE_PROTOCOLS:
        raise ValueError(
            f"the wire axis tests the signed-message protocols "
            f"({', '.join(WIRE_PROTOCOLS)}); got protocol={spec.protocol!r}"
        )
    try:
        plan = parse_wire_faults(spec.wire)
    except WireError as exc:
        raise ValueError(f"bad wire axis {spec.wire!r}: {exc}") from None
    if spec.scheduler or spec.fault_plan:
        raise ValueError(
            "wire scenarios run on the real-time TCP transport: the "
            "simulated scheduler/fault_plan axes do not apply there"
        )
    if spec.byzantine:
        raise ValueError(
            "wire scenarios drive honest processes — the wire itself is "
            "the adversary; drop the byzantine axis"
        )
    if spec.mutant == "no-signatures" and not (
        plan.has("tamper-value") or plan.has("tamper-sig")
    ):
        raise ValueError(
            "the no-signatures mutant needs a tamper-* wire term: without "
            "one there is nothing for blind verification to miss"
        )


def generate_scenarios(
    seed: int,
    budget: int,
    mutant: str = "",
    coverage: Any = None,
    menus: dict[str, tuple[str, ...]] | None = None,
) -> list[ScenarioSpec]:
    """Derive ``budget`` scenario specs deterministically from one seed.

    With ``mutant`` set, every spec runs the named weakened variant with
    its triggering adversary in the mix — the self-test mode proving the
    invariant checkers still catch known-bad implementations.

    ``coverage`` (a :class:`~repro.explore.coverage.CoverageMap`) and/or
    ``menus`` (campaign axis menus) switch to the weighted generator; the
    plain call keeps its historic draw sequence byte-exact.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    sampler = ScenarioSampler(seed=seed, mutant=mutant, coverage=coverage, menus=menus)
    return sampler.take(budget)


#: Axis-menu keys a campaign file (or caller) may override.
MENU_KEYS = ("protocols", "schedulers", "fault_plans", "wire")

_DEFAULT_MENUS: dict[str, tuple[str, ...]] = {
    "protocols": ("wts", "wts", "sbs", "gwts", "gwts", "gsbs", "rsm"),
    "schedulers": _SCHEDULER_MENU,
    "fault_plans": _FAULT_PLAN_MENU,
    "wire": WIRE_MENU,
}


class ScenarioSampler:
    """A deterministic stream of scenario specs, one batch at a time.

    Three modes, all pure functions of the constructor arguments plus (for
    coverage) the observation history fed back between batches:

    * plain — no coverage, no menus: draws exactly the sequence
      :func:`generate_scenarios` has always drawn (pinned by the explorer
      determinism tests);
    * mutant — every spec runs the named known-bad variant;
    * weighted — a :class:`~repro.explore.coverage.CoverageMap` and/or
      campaign menus steer each axis draw through
      ``random.Random.choices`` with integer weights, which keeps the
      stream independent of worker count (feedback happens strictly
      between batches, never inside one).
    """

    def __init__(
        self,
        seed: int,
        mutant: str = "",
        coverage: Any = None,
        menus: dict[str, tuple[str, ...]] | None = None,
    ) -> None:
        if mutant and mutant not in MUTANTS:
            raise ValueError(f"unknown mutant {mutant!r}; known: {', '.join(MUTANTS)}")
        if menus:
            unknown = sorted(set(menus) - set(MENU_KEYS))
            if unknown:
                raise ValueError(
                    f"unknown axis menus {unknown}; known: {', '.join(MENU_KEYS)}"
                )
        self.rng = random.Random(seed)
        self.mutant = mutant
        self.coverage = coverage
        self.menus = dict(_DEFAULT_MENUS)
        for key, values in (menus or {}).items():
            if not values:
                raise ValueError(f"axis menu {key!r} must not be empty")
            self.menus[key] = tuple(values)
        self._weighted = coverage is not None or bool(menus)

    def take(self, count: int) -> list[ScenarioSpec]:
        specs: list[ScenarioSpec] = []
        for _ in range(count):
            if self.mutant:
                spec = _generate_mutant_spec(self.rng, self.mutant)
            elif self._weighted:
                spec = _generate_weighted_spec(self.rng, self.menus, self.coverage)
            else:
                spec = _generate_spec(self.rng)
            validate_spec(spec)
            specs.append(spec)
        return specs


def _generate_spec(rng: random.Random) -> ScenarioSpec:
    protocol = rng.choice(("wts", "wts", "sbs", "gwts", "gwts", "gsbs", "rsm"))
    f = rng.choice((1, 1, 2)) if protocol in ("wts", "sbs") else 1
    n = 3 * f + 1 + rng.choice((0, 0, 1))
    menu = PROTOCOL_BEHAVIOURS[protocol]
    byzantine = tuple(rng.choice(menu) for _ in range(rng.randint(0, f)))
    if protocol == "rsm":
        scheduler = rng.choice(_RSM_SCHEDULER_MENU)
        fault_plan = rng.choice(_RSM_FAULT_PLAN_MENU)
    else:
        scheduler = rng.choice(_SCHEDULER_MENU)
        fault_plan = rng.choice(_FAULT_PLAN_MENU)
    return ScenarioSpec(
        protocol=protocol,
        n=n,
        f=f,
        byzantine=byzantine,
        scheduler=scheduler,
        fault_plan=fault_plan,
        rounds=rng.choice((2, 3)) if protocol in ("gwts", "gsbs") else 3,
        seed=rng.randrange(1_000_000),
    )


def _generate_weighted_spec(
    rng: random.Random,
    menus: dict[str, tuple[str, ...]],
    coverage: Any,
) -> ScenarioSpec:
    """The coverage/campaign generator: every axis draw is menu-driven and
    (with a CoverageMap) weighted toward values that recently found novel
    signatures or violations.  Same spec shapes as :func:`_generate_spec`;
    only the draw mechanics differ."""

    def choose(axis: str, menu: tuple[str, ...]) -> str:
        if coverage is not None:
            return coverage.choose(rng, axis, menu)
        return rng.choice(menu)

    protocol = choose("protocol", menus["protocols"])
    f = rng.choice((1, 1, 2)) if protocol in ("wts", "sbs") else 1
    n = 3 * f + 1 + rng.choice((0, 0, 1))
    rounds = rng.choice((2, 3)) if protocol in ("gwts", "gsbs") else 3
    wire = ""
    if protocol in WIRE_PROTOCOLS:
        wire = choose("wire", menus["wire"])
    if wire:
        # On the wire axis the forged frames are the adversary; the
        # simulated axes do not exist on the real-time TCP transport.
        # Wire runs also ride real wall-clock sockets where cost grows
        # steeply with quorum size and round count (a GSbS proof frame is
        # nested sets of signed values — n=5 at rounds=3 costs tens of
        # seconds to serialize and verify), so the wire axis keeps the
        # minimum quorum and shallow rounds: the claim under test is that
        # *verification* rejects tampered bytes, which quorum geometry
        # does not change.  The draws above still happen so the RNG
        # stream (and hence campaign determinism) is unaffected.
        return ScenarioSpec(
            protocol=protocol, n=4, f=1, rounds=2,
            wire=wire, seed=rng.randrange(1_000_000),
        )
    menu = PROTOCOL_BEHAVIOURS[protocol]
    byzantine = tuple(rng.choice(menu) for _ in range(rng.randint(0, f)))
    # The data-plane axes (PR 9): a per-round batch cap for the generalized
    # protocols, and — for the RSM — a sharded replica fleet.  Both default
    # to the historic unbatched/single-group shapes most of the time.
    batch = rng.choice((0, 0, 2, 4)) if protocol in ("gwts", "gsbs", "rsm") else 0
    shards = 1
    if protocol == "rsm":
        # RSM keeps its gentle axes regardless of campaign menus (see the
        # comment on _RSM_SCHEDULER_MENU).
        scheduler = rng.choice(_RSM_SCHEDULER_MENU)
        fault_plan = rng.choice(_RSM_FAULT_PLAN_MENU)
        shards = rng.choice((1, 1, 2))
        if shards > 1:
            # The sharded scenario builder drives correct replicas only,
            # and every shard group needs >= 3f + 1 members.
            byzantine = ()
            n = shards * (3 * f + 1)
    else:
        scheduler = choose("scheduler", menus["schedulers"])
        fault_plan = choose("fault_plan", menus["fault_plans"])
    return ScenarioSpec(
        protocol=protocol, n=n, f=f, byzantine=byzantine,
        scheduler=scheduler, fault_plan=fault_plan, rounds=rounds,
        batch=batch, shards=shards,
        seed=rng.randrange(1_000_000),
    )


def _generate_mutant_spec(rng: random.Random, mutant: str) -> ScenarioSpec:
    if mutant == "no-signatures":
        return ScenarioSpec(
            protocol="sbs",
            n=4 + rng.choice((0, 1)),
            f=1,
            wire=rng.choice(_NO_SIGNATURES_WIRE_MENU),
            mutant=mutant,
            seed=rng.randrange(1_000_000),
        )
    trigger = MUTANTS[mutant]
    extras = ("silent",) if rng.random() < 0.3 else ()
    f = 1 + len(extras)
    return ScenarioSpec(
        protocol="wts",
        n=3 * f + 1 + rng.choice((0, 1)),
        f=f,
        byzantine=(trigger,) + extras,
        scheduler=rng.choice(_SCHEDULER_MENU),
        fault_plan=rng.choice(_FAULT_PLAN_MENU),
        mutant=mutant,
        seed=rng.randrange(1_000_000),
    )


def _mutant_process_class(mutant: str) -> type:
    # Imported here, not at module level: the ablations are deliberately
    # incorrect implementations and stay out of import-time surfaces.
    from repro.core.ablations import (
        NoDefencesWTSProcess,
        NoSafetyWTSProcess,
        PlainDisclosureWTSProcess,
    )

    return {
        "no-wait-till-safe": NoSafetyWTSProcess,
        "plain-disclosure": PlainDisclosureWTSProcess,
        "no-defences": NoDefencesWTSProcess,
    }[mutant]


def _run_spec(spec: ScenarioSpec, quick: bool, backend: str = "kernel"):
    """Execute one spec; returns ``(scenario, kind, strict)``.

    ``strict=False`` relaxes the invariant that is only *eventual* over a
    perturbed finite prefix (inclusivity for generalized runs, operation
    liveness for RSM runs) — the same treatment E12 gives its churn
    configurations.
    """
    factories = [_BEHAVIOUR_BUILDERS[name](spec.rounds) for name in spec.byzantine]
    common = dict(
        n=spec.n,
        f=spec.f,
        seed=spec.seed,
        byzantine_factories=factories,
        scheduler=spec.scheduler,
        fault_plan=spec.fault_plan,
        backend=backend,
    )
    if spec.wire:
        # The wire axis forces the async backend's real TCP transport with
        # the FaultyCodec injecting on the send path; a wall-clock budget
        # bounds the run because real sockets have no simulated-time cap.
        common.update(
            backend="async",
            transport="tcp",
            wire_faults=spec.wire,
            # Generous relative to a healthy run (~1-15s at the clamped
            # spec sizes, dominated by reconnect backoff under flip/trunc
            # churn): a cap-induced "liveness violation" on a loaded CI
            # runner is a false alarm, and the campaign's per-job
            # timeout_s still bounds a genuinely wedged run.
            max_wall_s=30.0 if quick else 60.0,
        )
        if spec.mutant == "no-signatures":
            from repro.core.ablations import BlindKeyRegistry

            common["registry"] = BlindKeyRegistry(seed=spec.seed)
    if spec.protocol == "wts":
        if spec.mutant:
            # Mirror E11: run the weakened variant to quiescence under a
            # message cap so liveness-destroying mutants terminate and
            # value-laundering mutants get time to contaminate decisions.
            scenario = run_wts_scenario(
                process_class=_mutant_process_class(spec.mutant),
                run_to_quiescence=True,
                max_messages=30_000,
                **common,
            )
        else:
            scenario = run_wts_scenario(**common)
        return scenario, "la", True
    if spec.protocol == "sbs":
        return run_sbs_scenario(**common), "la", True
    if spec.protocol in ("gwts", "gsbs"):
        runner = run_gwts_scenario if spec.protocol == "gwts" else run_gsbs_scenario
        scenario = runner(
            values_per_process=1 if quick else 2,
            rounds=spec.rounds,
            batch_size=spec.batch or None,
            **common,
        )
        # Inclusivity over the finite prefix is only guaranteed when the
        # environment does not hold traffic for long stretches.  Wire runs
        # ride real wall-clock TCP, whose timing can truncate the prefix
        # the same way, so they get the same relaxation.
        strict = spec.fault_plan in ("", "none") and not (
            scheduler_spec_is_adversarial(spec.scheduler)
        ) and not spec.wire
        return scenario, "gla", strict
    if spec.protocol == "rsm":
        counter = GCounterObject("hits")
        gset = GSetObject("tags")
        scripts = {
            "client0": [("update", counter.op_inc(1)), ("update", counter.op_inc(2)), ("read",)],
            "client1": [("update", gset.op_add("tag-a")), ("read",)],
        }
        if spec.shards > 1:
            # The sharded data plane (PR 9): independent per-shard GWTS
            # groups, commands routed by object, reads joining every shard.
            scenario = run_sharded_rsm_scenario(
                n_replicas=spec.n,
                f=spec.f,
                shards=spec.shards,
                client_scripts=scripts,
                rounds=12,
                seed=spec.seed,
                scheduler=spec.scheduler,
                fault_plan=spec.fault_plan,
                backend=backend,
                batch_size=spec.batch or None,
            )
        else:
            scenario = run_rsm_scenario(
                n_replicas=spec.n,
                f=spec.f,
                client_scripts=scripts,
                byzantine_replica_factories=factories,
                byzantine_client_payloads={"badclient": ["junk-0", "junk-1"]},
                rounds=12,
                seed=spec.seed,
                scheduler=spec.scheduler,
                fault_plan=spec.fault_plan,
                backend=backend,
                batch_size=spec.batch or None,
            )
        # Replicas execute a finite GWTS prefix; a fault window can eat
        # rounds on empty batches, so operation liveness is only strict on
        # an unperturbed run (read safety is always checked).
        return scenario, "rsm", spec.fault_plan in ("", "none")
    raise ValueError(f"unknown protocol {spec.protocol!r}")  # validate_spec prevents this


def run_scenario_spec(
    spec: ScenarioSpec, quick: bool = False, backend: str = "kernel"
) -> dict[str, Any]:
    """Run one spec and return the uniform experiment outcome dictionary."""
    validate_spec(spec)
    scenario, kind, strict = _run_spec(spec, quick, backend)
    violations = check_scenario_invariants(
        scenario,
        kind,
        require_liveness=strict if kind == "rsm" else True,
        require_inclusivity=strict,
    )
    ok = not violations
    rows = [
        (invariant, len(messages), messages[0])
        for invariant, messages in sorted(violations.items())
    ] or [("(all invariants)", 0, "no violations")]
    headers = ["invariant", "#violations", "first violation"]
    return {
        "experiment": "SCENARIO",
        "expected": "all protocol invariants hold on a randomized scenario",
        "spec": spec.params() | {"seed": spec.seed},
        "kind": kind,
        "violations": violations,
        "replay": spec.replay_command(quick=quick),
        "headers": headers,
        "rows": rows,
        "table": format_table(headers, rows, title=f"SCENARIO: {spec.describe()}"),
        "check": {"ok": ok, "violations": violations},
        "ok": ok,
        "headline": {
            "violated_invariants": float(len(violations)),
            "decided": float(sum(1 for decs in scenario.decisions().values() if decs)),
        },
        "latency": {},
    }


def run_scenario_experiment(
    protocol: str = "wts",
    n: int = 4,
    f: int = 1,
    byzantine: str = "",
    scheduler: str = "",
    fault_plan: str = "",
    rounds: int = 3,
    mutant: str = "",
    wire: str = "",
    batch: int = 0,
    shards: int = 1,
    backend: str = "kernel",
    seed: int = 0,
    quick: bool = False,
) -> dict[str, Any]:
    """The hidden ``SCENARIO`` experiment: one randomized-explorer scenario.

    Every parameter mirrors a :class:`ScenarioSpec` field (``byzantine`` is
    ``+``-joined), so ``repro run SCENARIO --seed S --param ...`` replays
    any scenario the explorer reports — including shrunk reproducers.
    """
    spec = ScenarioSpec(
        protocol=protocol,
        n=n,
        f=f,
        byzantine=tuple(name for name in byzantine.split("+") if name),
        scheduler=scheduler,
        fault_plan=fault_plan,
        rounds=rounds,
        mutant=mutant,
        wire=wire,
        batch=batch,
        shards=shards,
        seed=seed,
    )
    return run_scenario_spec(spec, quick=quick, backend=backend)


def spec_from_params(seed: int, params: dict[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from ``SCENARIO`` job params."""
    byzantine = params.get("byzantine", "")
    if isinstance(byzantine, str):
        byzantine = tuple(name for name in byzantine.split("+") if name)
    return ScenarioSpec(
        protocol=params.get("protocol", "wts"),
        n=int(params.get("n", 4)),
        f=int(params.get("f", 1)),
        byzantine=tuple(byzantine),
        scheduler=params.get("scheduler", ""),
        fault_plan=params.get("fault_plan", ""),
        rounds=int(params.get("rounds", 3)),
        mutant=params.get("mutant", ""),
        wire=params.get("wire", ""),
        batch=int(params.get("batch", 0)),
        shards=int(params.get("shards", 1)),
        seed=seed,
    )
