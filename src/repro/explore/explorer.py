"""The exploration driver behind ``python -m repro explore``.

One call to :func:`explore` is one fuzzing campaign:

1. :func:`~repro.explore.scenarios.generate_scenarios` derives ``budget``
   scenario specs from the campaign seed (the only randomness involved);
2. each spec becomes a ``SCENARIO`` :class:`~repro.orchestrator.jobs.JobSpec`
   and runs through the persistent worker pool — same process isolation,
   per-job timeouts and versioned job payloads as a sweep; finished
   payloads stream out through ``sink`` (the CLI's JSONL shard writer) as
   they complete, and ``completed`` feeds back shard records on
   ``--resume`` so only the missing jobs execute;
3. every invariant violation is **replayed** in-process from its seed
   (confirming the determinism the reproducer story depends on) and then
   **shrunk** to a minimal spec with
   :func:`~repro.explore.shrink.shrink_scenario`.

The campaign result is JSON-able and rides inside the artifact's ``config``
section, so one ``results/run-<tag>.json`` file carries the whole story:
every scenario's job payload plus the shrunk reproducers and their replay
command lines.  Campaigns are deterministic: the same ``(budget, seed,
mutant)`` produce identical canonical artifacts at any worker count.

``coverage=True`` turns on the PR 8 feedback loop: scenarios run in
batches, each batch's outcomes feed a
:class:`~repro.explore.coverage.CoverageMap`, and the next batch's axis
draws are weighted toward values that recently produced never-seen
coverage signatures or invariant violations.  Feedback is strictly
batch-synchronous — observation order inside a batch is job order, never
completion order — so coverage campaigns keep the worker-count-invariance
guarantee.

Wire-axis scenarios (real TCP + fault injection) get one relaxation:
wall-clock transports are not bit-deterministic, so a violation that does
not reproduce on in-process replay is still reported as a violation
(``replayed=False``, unshrunk) rather than laundered into an
infrastructure failure — the campaign still fails, with the original
finding attached.
"""

from __future__ import annotations
from collections.abc import Callable

from dataclasses import dataclass, field
from typing import Any

from repro.explore.coverage import CoverageMap
from repro.explore.scenarios import ScenarioSampler, ScenarioSpec, run_scenario_spec
from repro.explore.shrink import DEFAULT_MAX_PROBES, shrink_scenario
from repro.orchestrator.jobs import JobSpec
from repro.orchestrator.pool import JobResult, iter_job_results

#: Default number of scenarios per campaign (mirrors the CLI default).
DEFAULT_BUDGET = 25

#: Default feedback batch size for coverage-guided campaigns.
DEFAULT_BATCH = 8


@dataclass
class ViolationReport:
    """One invariant violation: the offending spec and its minimal form."""

    spec: ScenarioSpec
    violations: dict[str, list[str]]
    replayed: bool
    shrunk: ScenarioSpec
    shrunk_violations: dict[str, list[str]]
    shrink_probes: int
    #: The campaign's quick flag; replay commands must carry it, because
    #: quick mode changes the generalized workloads.
    quick: bool = False

    def replay(self) -> str:
        return self.spec.replay_command(quick=self.quick)

    def shrunk_replay(self) -> str:
        return self.shrunk.replay_command(quick=self.quick)

    def to_config(self) -> dict[str, Any]:
        """JSON-ready form embedded in the artifact's ``config.explore``."""
        return {
            "spec": self.spec.params() | {"seed": self.spec.seed},
            "violations": self.violations,
            "replayed": self.replayed,
            "replay": self.replay(),
            "shrunk_spec": self.shrunk.params() | {"seed": self.shrunk.seed},
            "shrunk_violations": self.shrunk_violations,
            "shrunk_replay": self.shrunk_replay(),
            "shrink_probes": self.shrink_probes,
        }


@dataclass
class ExplorationReport:
    """Outcome of one campaign: scenarios run, violations found and shrunk."""

    budget: int
    seed: int
    mutant: str
    results: list[JobResult]
    violations: list[ViolationReport] = field(default_factory=list)
    #: Jobs that timed out or crashed (infrastructure failures, not
    #: invariant verdicts) — still campaign failures.
    failures: list[str] = field(default_factory=list)
    #: Coverage summary (signatures, novelty per batch, hottest axis
    #: values) when the campaign ran with feedback on; None otherwise.
    coverage: dict[str, Any] | None = None
    #: The parsed campaign file, verbatim, when one drove the run.
    campaign: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failures

    def to_config(self) -> dict[str, Any]:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "mutant": self.mutant,
            "violations": [violation.to_config() for violation in self.violations],
            "failures": list(self.failures),
            "coverage": self.coverage,
            "campaign": self.campaign,
        }


def explore(
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    workers: int = 1,
    mutant: str = "",
    quick: bool = False,
    timeout_s: float | None = None,
    max_probes: int = DEFAULT_MAX_PROBES,
    progress: Callable[[JobResult], None] | None = None,
    coverage: bool = False,
    batch: int = 0,
    menus: dict[str, tuple[str, ...]] | None = None,
    campaign_config: dict[str, Any] | None = None,
    sink: Callable[[int, dict[str, Any]], None] | None = None,
    completed: dict[int, dict[str, Any]] | None = None,
) -> ExplorationReport:
    """Run one exploration campaign; see the module docstring for the shape.

    ``sink`` receives ``(index, payload)`` for every *newly executed* job as
    it completes — the CLI points it at the JSONL shard writer, so a crash
    loses at most the in-flight jobs.  ``completed`` maps scenario indices
    to job payloads recovered from a previous run's shard (``--resume``):
    those scenarios are not re-executed, but their stored payloads still
    feed the coverage map in job order, so the feedback RNG stream — and
    therefore every later scenario — is identical to the uninterrupted run.
    A ``completed`` payload whose key does not match the deterministic
    re-expansion means the shard belongs to a different campaign; that
    raises rather than silently mixing runs.
    """
    if budget < 1:
        raise ValueError(f"budget must be >= 1, got {budget}")
    completed = completed or {}
    coverage_map = CoverageMap() if coverage else None
    sampler = ScenarioSampler(seed=seed, mutant=mutant, coverage=coverage_map, menus=menus)
    # Without feedback, batching changes nothing — run one batch, which
    # keeps the historic single-shot path (and its RNG stream) intact.
    batch_size = batch if batch >= 1 else (DEFAULT_BATCH if coverage else budget)

    specs: list[ScenarioSpec] = []
    results: list[JobResult] = []
    while len(specs) < budget:
        base = len(specs)
        chunk = sampler.take(min(batch_size, budget - len(specs)))
        chunk_results: list[JobResult | None] = [None] * len(chunk)
        pending: list[JobSpec] = []
        pending_offsets: list[int] = []
        for offset, spec in enumerate(chunk):
            job = JobSpec(
                experiment="SCENARIO",
                seed=spec.seed,
                params=tuple(sorted(spec.params().items())),
                quick=quick,
                timeout_s=timeout_s,
                index=base + offset,
            )
            done = completed.get(job.index)
            if done is not None:
                if done.get("key") != job.key:
                    raise ValueError(
                        f"resume shard does not match this campaign: stored job "
                        f"{done.get('key')!r} at index {job.index} vs expected {job.key!r}"
                    )
                chunk_results[offset] = JobResult(job=job, payload=done)
            else:
                pending.append(job)
                pending_offsets.append(offset)
        for position, result in iter_job_results(pending, workers=workers):
            offset = pending_offsets[position]
            chunk_results[offset] = result
            if sink is not None:
                sink(base + offset, result.payload)
            if progress is not None:
                progress(result)
        if coverage_map is not None:
            for spec, result in zip(chunk, chunk_results, strict=True):
                if result.payload["status"] in ("ok", "check_failed"):
                    coverage_map.observe(spec, _observed_outcome(result))
            coverage_map.end_batch()
        specs += chunk
        results += [_slim_result(result) for result in chunk_results]

    report = ExplorationReport(
        budget=budget, seed=seed, mutant=mutant, results=results,
        coverage=coverage_map.summary() if coverage_map is not None else None,
        campaign=campaign_config,
    )
    for spec, result in zip(specs, results, strict=True):
        status = result.payload["status"]
        if status == "ok":
            continue
        if status in ("timeout", "error"):
            error = str(result.payload.get("error") or "").strip().splitlines()
            detail = error[-1] if error else status
            report.failures.append(f"{result.job.key}: [{status}] {detail}")
            continue
        # status == "check_failed": an invariant violation.  Replay it from
        # the seed in-process — determinism is the whole reproducer story —
        # then shrink greedily.
        outcome = run_scenario_spec(spec, quick=quick)
        replayed = not outcome["ok"]
        if not replayed:
            if spec.wire:
                # Real-TCP runs are wall-clock: a finding that does not
                # come back on replay is still the worker's finding, not an
                # infrastructure failure.  Report it unshrunk.
                job_violations = (result.payload.get("data") or {}).get("violations", {})
                report.violations.append(
                    ViolationReport(
                        spec=spec,
                        violations=job_violations,
                        replayed=False,
                        shrunk=spec,
                        shrunk_violations=job_violations,
                        shrink_probes=0,
                        quick=quick,
                    )
                )
                continue
            report.failures.append(  # pragma: no cover - a determinism bug
                f"{result.job.key}: violation did NOT reproduce on replay"
            )
            continue
        shrunk, shrunk_violations, probes = _shrink_with_outcomes(
            spec, outcome, quick, max_probes
        )
        report.violations.append(
            ViolationReport(
                spec=spec,
                violations=outcome["violations"],
                replayed=replayed,
                shrunk=shrunk,
                shrunk_violations=shrunk_violations,
                shrink_probes=probes,
                quick=quick,
            )
        )
    return report


#: Keys of a job payload's "data" section that in-process consumers still
#: read after the payload has been streamed to the shard (the violation
#: reporter needs the wire-scenario violations, examples read the spec).
_RETAINED_DATA_KEYS = ("spec", "violations")


def _slim_result(result: JobResult) -> JobResult:
    """Drop the bulk of a payload's ``data`` once it has been streamed out.

    The full payload lives in the JSONL shard / artifact; what the report
    retains in memory only has to serve the violation loop and callers
    reading verdicts — so a campaign's resident size no longer scales with
    per-job data volume.
    """
    data = result.payload.get("data")
    if not isinstance(data, dict):
        return result
    slim = {key: data[key] for key in _RETAINED_DATA_KEYS if key in data}
    return JobResult(job=result.job, payload={**result.payload, "data": slim})


def _observed_outcome(result: JobResult) -> dict[str, Any]:
    """The slice of a job payload the coverage signature reads."""
    data = result.payload.get("data") or {}
    return {
        "ok": result.payload.get("ok", True),
        "violations": data.get("violations") or {},
        "headline": result.payload.get("headline") or {},
    }


def _shrink_with_outcomes(
    spec: ScenarioSpec,
    outcome: dict[str, Any],
    quick: bool,
    max_probes: int,
) -> tuple:
    """Shrink ``spec``; return ``(shrunk, shrunk violations, probes)``.

    Every violating probe's outcome is cached (specs are frozen/hashable),
    so the accepted shrunk spec is never re-simulated just to read its
    violations back.
    """
    violating_outcomes: dict[ScenarioSpec, dict[str, Any]] = {spec: outcome}

    def violates(candidate: ScenarioSpec) -> bool:
        probe_outcome = run_scenario_spec(candidate, quick=quick)
        if not probe_outcome["ok"]:
            violating_outcomes[candidate] = probe_outcome
        return not probe_outcome["ok"]

    shrunk, probes = shrink_scenario(spec, violates, max_probes=max_probes)
    return shrunk, violating_outcomes[shrunk]["violations"], probes
