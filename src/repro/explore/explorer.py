"""The exploration driver behind ``python -m repro explore``.

One call to :func:`explore` is one fuzzing campaign:

1. :func:`~repro.explore.scenarios.generate_scenarios` derives ``budget``
   scenario specs from the campaign seed (the only randomness involved);
2. each spec becomes a ``SCENARIO`` :class:`~repro.orchestrator.jobs.JobSpec`
   and runs through the existing worker pool — same process-per-job
   isolation, per-job timeouts and ``repro-results/v1`` job payloads as a
   sweep;
3. every invariant violation is **replayed** in-process from its seed
   (confirming the determinism the reproducer story depends on) and then
   **shrunk** to a minimal spec with
   :func:`~repro.explore.shrink.shrink_scenario`.

The campaign result is JSON-able and rides inside the artifact's ``config``
section, so one ``results/run-<tag>.json`` file carries the whole story:
every scenario's job payload plus the shrunk reproducers and their replay
command lines.  Campaigns are deterministic: the same ``(budget, seed,
mutant)`` produce identical canonical artifacts at any worker count.
"""

from __future__ import annotations
from collections.abc import Callable

from dataclasses import dataclass, field
from typing import Any

from repro.explore.scenarios import ScenarioSpec, generate_scenarios, run_scenario_spec
from repro.explore.shrink import DEFAULT_MAX_PROBES, shrink_scenario
from repro.orchestrator.jobs import JobSpec
from repro.orchestrator.pool import JobResult, run_jobs

#: Default number of scenarios per campaign (mirrors the CLI default).
DEFAULT_BUDGET = 25


@dataclass
class ViolationReport:
    """One invariant violation: the offending spec and its minimal form."""

    spec: ScenarioSpec
    violations: dict[str, list[str]]
    replayed: bool
    shrunk: ScenarioSpec
    shrunk_violations: dict[str, list[str]]
    shrink_probes: int
    #: The campaign's quick flag; replay commands must carry it, because
    #: quick mode changes the generalized workloads.
    quick: bool = False

    def replay(self) -> str:
        return self.spec.replay_command(quick=self.quick)

    def shrunk_replay(self) -> str:
        return self.shrunk.replay_command(quick=self.quick)

    def to_config(self) -> dict[str, Any]:
        """JSON-ready form embedded in the artifact's ``config.explore``."""
        return {
            "spec": self.spec.params() | {"seed": self.spec.seed},
            "violations": self.violations,
            "replayed": self.replayed,
            "replay": self.replay(),
            "shrunk_spec": self.shrunk.params() | {"seed": self.shrunk.seed},
            "shrunk_violations": self.shrunk_violations,
            "shrunk_replay": self.shrunk_replay(),
            "shrink_probes": self.shrink_probes,
        }


@dataclass
class ExplorationReport:
    """Outcome of one campaign: scenarios run, violations found and shrunk."""

    budget: int
    seed: int
    mutant: str
    results: list[JobResult]
    violations: list[ViolationReport] = field(default_factory=list)
    #: Jobs that timed out or crashed (infrastructure failures, not
    #: invariant verdicts) — still campaign failures.
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.failures

    def to_config(self) -> dict[str, Any]:
        return {
            "budget": self.budget,
            "seed": self.seed,
            "mutant": self.mutant,
            "violations": [violation.to_config() for violation in self.violations],
            "failures": list(self.failures),
        }


def explore(
    budget: int = DEFAULT_BUDGET,
    seed: int = 0,
    workers: int = 1,
    mutant: str = "",
    quick: bool = False,
    timeout_s: float | None = None,
    max_probes: int = DEFAULT_MAX_PROBES,
    progress: Callable[[JobResult], None] | None = None,
) -> ExplorationReport:
    """Run one exploration campaign; see the module docstring for the shape."""
    specs = generate_scenarios(seed=seed, budget=budget, mutant=mutant)
    jobs = [
        JobSpec(
            experiment="SCENARIO",
            seed=spec.seed,
            params=tuple(sorted(spec.params().items())),
            quick=quick,
            timeout_s=timeout_s,
            index=index,
        )
        for index, spec in enumerate(specs)
    ]
    results = run_jobs(jobs, workers=workers, progress=progress)
    report = ExplorationReport(
        budget=budget, seed=seed, mutant=mutant, results=results
    )
    for spec, result in zip(specs, results, strict=True):
        status = result.payload["status"]
        if status == "ok":
            continue
        if status in ("timeout", "error"):
            error = str(result.payload.get("error") or "").strip().splitlines()
            detail = error[-1] if error else status
            report.failures.append(f"{result.job.key}: [{status}] {detail}")
            continue
        # status == "check_failed": an invariant violation.  Replay it from
        # the seed in-process — determinism is the whole reproducer story —
        # then shrink greedily.
        outcome = run_scenario_spec(spec, quick=quick)
        replayed = not outcome["ok"]
        if not replayed:  # pragma: no cover - would mean a determinism bug
            report.failures.append(
                f"{result.job.key}: violation did NOT reproduce on replay"
            )
            continue
        shrunk, shrunk_violations, probes = _shrink_with_outcomes(
            spec, outcome, quick, max_probes
        )
        report.violations.append(
            ViolationReport(
                spec=spec,
                violations=outcome["violations"],
                replayed=replayed,
                shrunk=shrunk,
                shrunk_violations=shrunk_violations,
                shrink_probes=probes,
                quick=quick,
            )
        )
    return report


def _shrink_with_outcomes(
    spec: ScenarioSpec,
    outcome: dict[str, Any],
    quick: bool,
    max_probes: int,
) -> tuple:
    """Shrink ``spec``; return ``(shrunk, shrunk violations, probes)``.

    Every violating probe's outcome is cached (specs are frozen/hashable),
    so the accepted shrunk spec is never re-simulated just to read its
    violations back.
    """
    violating_outcomes: dict[ScenarioSpec, dict[str, Any]] = {spec: outcome}

    def violates(candidate: ScenarioSpec) -> bool:
        probe_outcome = run_scenario_spec(candidate, quick=quick)
        if not probe_outcome["ok"]:
            violating_outcomes[candidate] = probe_outcome
        return not probe_outcome["ok"]

    shrunk, probes = shrink_scenario(spec, violates, max_probes=max_probes)
    return shrunk, violating_outcomes[shrunk]["violations"], probes
