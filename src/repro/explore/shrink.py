"""Greedy scenario shrinking: reduce a violating spec to a minimal reproducer.

Classic property-based shrinking, specialized to :class:`ScenarioSpec`:
given a spec whose run violates an invariant and a ``violates`` predicate
(deterministic — a scenario run is a pure function of its spec), repeatedly
try simpler variants and keep the first one that still violates.  Candidate
order goes from the biggest semantic simplifications to the smallest:

1. drop the wire-fault axis entirely (a reproducer that survives without
   fault injection is an ordinary protocol bug), then drop wire-fault
   terms one at a time (rightmost first) toward the single triggering
   mode;
2. drop the fault plan, then the scheduler override (axes first: a
   reproducer that needs neither is schedule-independent, the strongest
   kind of finding);
3. collapse the rounds of generalized runs;
4. drop Byzantine behaviours one at a time (rightmost first, so a mutant's
   triggering adversary — placed first by the generator — survives longest);
5. reduce ``f`` (truncating the behaviour list to fit) and shrink ``n``
   toward the ``3f + 1`` floor.

The predicate is probed at most ``max_probes`` times, so shrinking cost is
bounded even for flaky judges; the loop also stops at the first fixpoint
(no candidate reproduces).  Candidates that raise are skipped — shrinking
must never trade an invariant violation for a crash.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterator

from repro.engine.wire_faults import parse_wire_faults
from repro.explore.scenarios import ScenarioSpec, validate_spec

#: Default probe budget per violation.
DEFAULT_MAX_PROBES = 48


def _candidates(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Yield strictly-simpler variants of ``spec``, boldest first."""
    if spec.wire:
        yield spec.replace(wire="")
        plan = parse_wire_faults(spec.wire)
        if plan is not None and len(plan.terms) > 1:
            for index in range(len(plan.terms) - 1, -1, -1):
                remaining = plan.terms[:index] + plan.terms[index + 1 :]
                simpler = dataclasses.replace(plan, terms=remaining)
                yield spec.replace(wire=simpler.describe())
    if spec.fault_plan:
        yield spec.replace(fault_plan="")
    if spec.scheduler:
        yield spec.replace(scheduler="")
    if spec.protocol in ("gwts", "gsbs") and spec.rounds > 1:
        yield spec.replace(rounds=1)
        if spec.rounds > 2:
            yield spec.replace(rounds=spec.rounds - 1)
    for index in range(len(spec.byzantine) - 1, -1, -1):
        remaining = spec.byzantine[:index] + spec.byzantine[index + 1 :]
        yield spec.replace(byzantine=remaining)
    if spec.f > 1:
        new_f = spec.f - 1
        yield spec.replace(
            f=new_f,
            n=max(3 * new_f + 1, spec.n - 3),
            byzantine=spec.byzantine[: new_f],
        )
    if spec.n > 3 * spec.f + 1:
        yield spec.replace(n=spec.n - 1)


def shrink_scenario(
    spec: ScenarioSpec,
    violates: Callable[[ScenarioSpec], bool],
    max_probes: int = DEFAULT_MAX_PROBES,
) -> tuple[ScenarioSpec, int]:
    """Greedily minimize ``spec`` while ``violates`` keeps returning ``True``.

    Returns ``(minimal spec, probes spent)``.  ``spec`` itself is assumed to
    violate (the explorer replays it first); the result is the last variant
    confirmed to violate, so it is always a valid reproducer.
    """
    probes = 0
    current = spec
    progressed = True
    while progressed and probes < max_probes:
        progressed = False
        for candidate in _candidates(current):
            if probes >= max_probes:
                break
            try:
                validate_spec(candidate)
            except ValueError:
                # e.g. the no-signatures mutant with its tamper term
                # dropped: structurally meaningless, skip without probing.
                continue
            probes += 1
            try:
                still_violates = violates(candidate)
            except Exception:
                continue
            if still_violates:
                current = candidate
                progressed = True
                break
    return current, probes
