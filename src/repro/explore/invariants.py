"""Reusable invariant checkers over finished scenarios.

Historically every consumer sliced the specification checkers differently:
the experiment runners read :meth:`ScenarioResult.check_la` /
:meth:`~repro.harness.workloads.ScenarioResult.check_gla` verdicts, E11
hand-rolled a Byzantine-value-bound judge, and E8 assembled the admissible
command set for :func:`repro.rsm.checker.check_rsm_history` inline.  This
module is the one home for those checks, keyed by invariant name, so the
randomized explorer, the experiment verdicts and the tests all judge a run
with the same code.

Every checker takes a finished
:class:`~repro.harness.workloads.ScenarioResult` (duck-typed — this module
sits below the harness so the harness can import it) and returns a mapping
``invariant name -> list of violation messages``; an empty mapping means the
run is clean.  The names are stable identifiers:

* ``liveness`` — every correct process decided (completed its operations);
* ``stability`` / ``local_stability`` — decisions never regress;
* ``comparability`` — any two decisions of correct processes are comparable
  (the agreement core of the paper's specification);
* ``inclusivity`` — own proposals / received inputs are included (validity);
* ``non_triviality`` — decisions stay below ``join(X ∪ B)`` (validity);
* ``byzantine_value_bound`` — at most ``f`` distinct adversary-originated
  values beyond the correct inputs appear in decisions (the ``|B| <= f``
  half of Non-Triviality that Observation 1 enforces);
* ``read_validity`` / ``read_consistency`` / ``read_monotonicity`` /
  ``update_stability`` / ``update_visibility`` — the RSM read/update
  properties of Section 7.1 (read comparability is ``read_consistency``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.spec import render_element
from repro.rsm.checker import check_rsm_history, collect_admissible_commands

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (harness imports us)
    from repro.harness.workloads import ScenarioResult

#: ``invariant name -> violation messages``; empty when the run is clean.
Violations = dict[str, list[str]]

#: Invariant names per scenario kind (documentation + test parametrization).
LA_INVARIANTS = ("liveness", "stability", "comparability", "inclusivity", "non_triviality", "byzantine_value_bound")
GLA_INVARIANTS = ("liveness", "local_stability", "comparability", "inclusivity", "non_triviality")
RSM_INVARIANTS = (
    "liveness",
    "read_validity",
    "read_consistency",
    "read_monotonicity",
    "update_stability",
    "update_visibility",
)

#: Scenario kinds :func:`check_scenario_invariants` understands.
SCENARIO_KINDS = ("la", "gla", "rsm")


def byzantine_value_bound_violations(scenario: ScenarioResult) -> list[str]:
    """Check ``|B| <= f``: at most ``f`` distinct Byzantine values decided.

    ``B`` is the set of adversary-originated lattice values beyond the
    correct processes' own inputs; the specification allows decisions to
    absorb them, but never more than one per Byzantine process (Observation
    1 / Lemma 13).  A value counts toward ``B`` when the adversary declared
    it, it is not already covered by the join of correct inputs, and some
    correct decision includes it.
    """
    lattice = scenario.lattice
    decisions = [
        decision for decs in scenario.decisions().values() for decision in decs
    ]
    if not decisions:
        return []
    correct_inputs = list(scenario.proposals().values())
    for values in scenario.inputs().values():
        correct_inputs.extend(values)
    correct_join = lattice.join_all(correct_inputs)
    injected = []
    for value in dict.fromkeys(scenario.byzantine_values()):
        if lattice.leq(value, correct_join):
            continue
        if any(lattice.leq(value, decision) for decision in decisions):
            injected.append(value)
    if len(injected) <= scenario.f:
        return []
    rendered = ", ".join(sorted(render_element(value) for value in injected))
    return [
        f"{len(injected)} distinct Byzantine values decided with f={scenario.f}: {rendered}"
    ]


def la_invariants(scenario: ScenarioResult, require_liveness: bool = True) -> Violations:
    """Single-shot LA invariants (Section 3.1) plus the Byzantine value bound."""
    violations = {
        name: list(messages)
        for name, messages in scenario.check_la(require_liveness=require_liveness).violations.items()
    }
    bound = byzantine_value_bound_violations(scenario)
    if bound:
        violations["byzantine_value_bound"] = bound
    return violations


def gla_invariants(scenario: ScenarioResult, require_inclusivity: bool = True) -> Violations:
    """Generalized LA invariants (Section 6.1) plus the Byzantine value bound.

    ``require_inclusivity=False`` skips the every-input-decided check for
    runs whose finite prefix was deliberately perturbed (fault churn,
    link-starving schedules): inclusivity there is only *eventual*, exactly
    as E12 treats it.

    The Byzantine value bound is deliberately *not* checked here: in the
    generalized problem the adversary legitimately introduces values round
    after round (Observation 1 constrains each round's safe set, not the
    run's union), so ``|B| <= f`` is a single-shot property only.
    """
    return {
        name: list(messages)
        for name, messages in scenario.check_gla(
            require_all_inputs_decided=require_inclusivity
        ).violations.items()
    }


def rsm_invariants(scenario: ScenarioResult, require_liveness: bool = True) -> Violations:
    """RSM read/update invariants (Section 7.1) over the clients' histories.

    Read Validity allows any command genuinely submitted to the RSM —
    including well-formed commands from Byzantine clients — so the admission
    logs of the correct replicas are the ground truth for the admissible set
    (the same construction E8 uses).
    """
    shard_histories = scenario.extras.get("shard_histories")
    if shard_histories:
        # A sharded run is `shards` independent RSM instances: the Section
        # 7.1 properties hold per shard (reads of different shards view
        # disjoint lattices and are legitimately incomparable), so each
        # shard's histories are judged on their own.
        violations: Violations = {}
        for shard, histories in sorted(shard_histories.items()):
            admissible = collect_admissible_commands(
                (scenario.nodes[pid] for pid in scenario.correct_pids),
                histories.values(),
            )
            result = check_rsm_history(
                histories.values(),
                admissible_commands=admissible,
                require_liveness=require_liveness,
            )
            for name, messages in result.violations.items():
                violations.setdefault(name, []).extend(
                    f"shard {shard}: {message}" for message in messages
                )
        return violations
    histories = scenario.extras.get("histories", {})
    admissible = collect_admissible_commands(
        (scenario.nodes[pid] for pid in scenario.correct_pids), histories.values()
    )
    result = check_rsm_history(
        histories.values(), admissible_commands=admissible, require_liveness=require_liveness
    )
    return {name: list(messages) for name, messages in result.violations.items()}


def check_scenario_invariants(
    scenario: ScenarioResult,
    kind: str,
    require_liveness: bool = True,
    require_inclusivity: bool = True,
) -> Violations:
    """Dispatch to the invariant set for ``kind`` (``la``/``gla``/``rsm``)."""
    if kind == "la":
        return la_invariants(scenario, require_liveness=require_liveness)
    if kind == "gla":
        return gla_invariants(scenario, require_inclusivity=require_inclusivity)
    if kind == "rsm":
        return rsm_invariants(scenario, require_liveness=require_liveness)
    raise ValueError(f"unknown scenario kind {kind!r}; expected one of {SCENARIO_KINDS}")
