"""Randomized scenario exploration (VOPR-style) for the protocol suite.

The explorer turns the simulator's adversarial knobs — scheduler policies,
scripted crash/partition churn, Byzantine behaviour mixes — into a seeded
random search for invariant violations:

* :mod:`repro.explore.invariants` — the reusable invariant library
  (agreement, validity, decision liveness, Byzantine value bounds, RSM read
  comparability) factored out of the experiment runners so the explorer and
  the E1–E12 verdicts judge runs with the same code.
* :mod:`repro.explore.scenarios` — :class:`ScenarioSpec` (a JSON-able
  description of one randomized run), the seeded generator, and the hidden
  ``SCENARIO`` experiment runner that lets specs flow through the
  orchestrator's worker pool and ``repro-results/v1`` artifacts unchanged.
* :mod:`repro.explore.shrink` — greedy scenario shrinking: strip the fault
  plan, the scheduler, extra Byzantine behaviours and excess cluster size
  while the violation still reproduces.
* :mod:`repro.explore.explorer` — the ``python -m repro explore`` driver:
  generate a budget of scenarios from one seed, fan them out across workers,
  then deterministically replay and shrink every violation to a minimal
  reproducer.

``scenarios``/``shrink``/``explorer`` are re-exported lazily: the harness
imports :mod:`repro.explore.invariants` while the orchestrator's experiment
registry is still being built, and an eager import here would close that
cycle.
"""

from repro.explore.invariants import (
    byzantine_value_bound_violations,
    check_scenario_invariants,
    gla_invariants,
    la_invariants,
    rsm_invariants,
)

__all__ = [
    "byzantine_value_bound_violations",
    "check_scenario_invariants",
    "gla_invariants",
    "la_invariants",
    "rsm_invariants",
    "ScenarioSpec",
    "generate_scenarios",
    "run_scenario_experiment",
    "shrink_scenario",
    "explore",
]

_LAZY = {
    "ScenarioSpec": "repro.explore.scenarios",
    "generate_scenarios": "repro.explore.scenarios",
    "run_scenario_experiment": "repro.explore.scenarios",
    "shrink_scenario": "repro.explore.shrink",
    "explore": "repro.explore.explorer",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
