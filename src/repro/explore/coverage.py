"""Coverage signatures and feedback-weighted axis sampling (PR 8).

A fuzzing campaign that draws every axis uniformly spends most of its
budget re-proving the same handful of outcomes.  This module gives the
explorer a cheap coverage notion so a campaign can *steer*:

:func:`coverage_signature`
    Collapses one executed scenario into a small tuple — protocol, the
    sorted set of violated invariants (or ``ok``), the scheduler and
    fault-plan families, the wire-fault mode set, the Byzantine behaviour
    set and a decided-count bucket.  Only canonical spec fields and the
    job's invariant verdict go in; wall-clock measurements never do, so a
    signature is as deterministic as the run that produced it.

:class:`CoverageMap`
    Counts signatures and keeps integer feedback weights per axis value.
    When a scenario hits a never-seen signature (novelty) or violates an
    invariant, every axis value that shaped it gets a weight boost;
    :meth:`CoverageMap.choose` then biases future draws by those weights
    through ``random.Random.choices``.

Determinism contract: weights are plain integers, boosts are applied in
batch order between batches (the explorer observes a whole batch before
the sampler draws the next one), and the RNG consumes exactly one
``choices`` draw per axis — so a campaign's spec stream is a pure function
of ``(seed, budget, batch, menus)`` plus the per-job outcomes, and is
identical at any worker count.
"""

from __future__ import annotations

import random
from typing import Any

#: Weight added to every contributing axis value on a never-seen signature.
NOVELTY_BOOST = 2

#: Weight added on an invariant violation (stacked on top of novelty).
VIOLATION_BOOST = 4

#: Base weight of every menu entry (never starves an axis value entirely).
BASE_WEIGHT = 1


def _family(value: str) -> str:
    """The axis family of a spec string: ``crash:0@5-25`` -> ``crash``."""
    return value.partition(":")[0].partition("@")[0] or "none"


def _wire_modes(wire: str) -> str:
    """The sorted mode set of a wire DSL string (rates/framing dropped)."""
    modes = sorted(
        {term.partition(":")[0].strip() for term in wire.split("+") if term.strip()}
        - {"framing"}
    )
    return "+".join(modes) or "none"


def _decided_bucket(spec: Any, outcome: dict[str, Any]) -> str:
    headline = outcome.get("headline") or {}
    decided = int(headline.get("decided") or 0)
    if decided == 0:
        return "decided=none"
    correct = spec.n - len(spec.byzantine)
    return "decided=all" if decided >= correct else "decided=partial"


def coverage_signature(spec: Any, outcome: dict[str, Any]) -> tuple[str, ...]:
    """One scenario's coverage bucket; see the module docstring."""
    violated = "|".join(sorted(outcome.get("violations") or {})) or "ok"
    return (
        f"protocol={spec.protocol}",
        f"invariants={violated}",
        f"scheduler={_family(spec.scheduler)}",
        f"faults={_family(spec.fault_plan)}",
        f"wire={_wire_modes(spec.wire)}",
        f"byz={','.join(sorted(set(spec.byzantine))) or 'none'}",
        # getattr defaults keep signatures of specs recorded before the
        # batch/shards axes existed (PR 9) stable under replay.
        f"plane=batch{getattr(spec, 'batch', 0)}/shards{getattr(spec, 'shards', 1)}",
        _decided_bucket(spec, outcome),
    )


class CoverageMap:
    """Signature counts plus integer feedback weights per axis value."""

    def __init__(self) -> None:
        self.signatures: dict[tuple[str, ...], int] = {}
        self.weights: dict[tuple[str, str], int] = {}
        self.novel_by_batch: list[int] = []
        self._batch_novel = 0

    def observe(self, spec: Any, outcome: dict[str, Any]) -> bool:
        """Record one executed scenario; returns True on a novel signature."""
        signature = coverage_signature(spec, outcome)
        novel = signature not in self.signatures
        self.signatures[signature] = self.signatures.get(signature, 0) + 1
        boost = 0
        if novel:
            boost += NOVELTY_BOOST
            self._batch_novel += 1
        if not outcome.get("ok", True):
            boost += VIOLATION_BOOST
        if boost:
            for axis, value in (
                ("protocol", spec.protocol),
                ("scheduler", spec.scheduler),
                ("fault_plan", spec.fault_plan),
                ("wire", spec.wire),
            ):
                key = (axis, value)
                self.weights[key] = self.weights.get(key, 0) + boost
        return novel

    def end_batch(self) -> None:
        """Close one feedback batch (novelty counters reset per batch)."""
        self.novel_by_batch.append(self._batch_novel)
        self._batch_novel = 0

    def weight(self, axis: str, value: str) -> int:
        return BASE_WEIGHT + self.weights.get((axis, value), 0)

    def choose(self, rng: random.Random, axis: str, menu: tuple[str, ...]) -> str:
        """One weighted draw from ``menu`` (exactly one RNG consumption)."""
        values = list(menu)
        return rng.choices(values, weights=[self.weight(axis, v) for v in values])[0]

    def summary(self) -> dict[str, Any]:
        """JSON-able campaign summary (deterministically ordered)."""
        hot = sorted(
            ([axis, value, weight] for (axis, value), weight in self.weights.items()),
            key=lambda row: (-row[2], row[0], row[1]),
        )
        return {
            "signatures": len(self.signatures),
            "observations": sum(self.signatures.values()),
            "novel_by_batch": list(self.novel_by_batch),
            "hot_axes": hot[:10],
        }
