"""Simulation driver: run the network until quiescence or a predicate holds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional

from repro.metrics.collector import MetricsCollector
from repro.transport.network import Network


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    #: Number of messages delivered during the run.
    delivered: int
    #: Simulated time at the end of the run.
    end_time: float
    #: Whether the run stopped because the stop predicate became true.
    stopped_by_predicate: bool
    #: Whether the network still had undelivered messages when we stopped.
    pending_messages: int
    #: Total kernel events processed (deliveries + timers + faults).
    events: int = 0
    #: Whether the run was truncated by the ``max_events`` valve (a scenario
    #: spinning on non-delivery events, e.g. self-rearming timers behind a
    #: never-healed partition).  Tests should treat this as a liveness
    #: failure, like hitting ``max_messages``.
    events_capped: bool = False
    #: The metrics collector of the underlying network (for convenience).
    metrics: MetricsCollector = field(repr=False, default=None)

    @property
    def quiescent(self) -> bool:
        """True when the run ended with no messages left in flight.

        An event-cap truncation is never quiescent, even with an empty
        message queue — the scenario was still generating events.
        """
        return self.pending_messages == 0 and not self.events_capped


class SimulationRuntime:
    """Drives a :class:`Network` to completion.

    The runtime repeatedly processes the next scheduled kernel event
    (message delivery, timer, scripted fault, injection).  It stops when any
    of the following holds:

    * the stop predicate returns ``True`` (e.g. "all correct proposers have
      decided"),
    * the kernel queue is exhausted (no events left at all), or
    * the ``max_messages`` safety valve trips (which tests treat as a
      liveness failure) — there is also an event-count valve so a scenario
      made only of self-rearming timers cannot spin forever.

    Because event order is entirely determined by the kernel's seeded
    scheduler, a runtime run is a pure function of (nodes, seed, scheduler,
    fault plan) — the determinism tests rely on this.
    """

    def __init__(self, network: Network) -> None:
        self.network = network

    def run(
        self,
        stop_when: Optional[Callable[[], bool]] = None,
        max_messages: int = 200_000,
        max_events: Optional[int] = None,
    ) -> RunResult:
        """Process events until the stop condition, quiescence or a cap."""
        network = self.network
        network.start()
        if max_events is None:
            max_events = max_messages * 8
        delivered = 0
        events = 0
        stopped = False
        exhausted = False
        while delivered < max_messages and events < max_events:
            if stop_when is not None and stop_when():
                stopped = True
                break
            event, envelope = network.process_next_event()
            if event is None:
                exhausted = True
                break
            events += 1
            if envelope is not None:
                delivered += 1
        return RunResult(
            delivered=delivered,
            end_time=network.now,
            stopped_by_predicate=stopped,
            pending_messages=network.pending(),
            events=events,
            events_capped=not stopped and not exhausted and events >= max_events,
            metrics=network.metrics,
        )

    def run_until_quiescent(self, max_messages: int = 200_000) -> RunResult:
        """Deliver every message currently in the system (and those they spawn)."""
        return self.run(stop_when=None, max_messages=max_messages)

    def run_until_decided(
        self, pids: List[Hashable], max_messages: int = 200_000
    ) -> RunResult:
        """Run until every process in ``pids`` has recorded a decision."""
        metrics = self.network.metrics
        targets = set(pids)
        # The collector maintains the decided-pid set incrementally, so this
        # predicate is O(|targets|) per event instead of the seed's
        # O(messages x processes) rebuild per delivered message.
        decided = metrics.decided

        def all_decided() -> bool:
            return targets <= decided

        return self.run(stop_when=all_decided, max_messages=max_messages)
