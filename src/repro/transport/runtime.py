"""Simulation driver: run the network until quiescence or a predicate holds."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, List, Optional

from repro.metrics.collector import MetricsCollector
from repro.transport.network import Network


@dataclass
class RunResult:
    """Outcome of one simulation run."""

    #: Number of messages delivered during the run.
    delivered: int
    #: Simulated time at the end of the run.
    end_time: float
    #: Whether the run stopped because the stop predicate became true.
    stopped_by_predicate: bool
    #: Whether the network still had undelivered messages when we stopped.
    pending_messages: int
    #: The metrics collector of the underlying network (for convenience).
    metrics: MetricsCollector = field(repr=False, default=None)

    @property
    def quiescent(self) -> bool:
        """True when the run ended with no messages left in flight."""
        return self.pending_messages == 0


class SimulationRuntime:
    """Drives a :class:`Network` to completion.

    The runtime repeatedly delivers the next scheduled message.  It stops
    when any of the following holds:

    * the stop predicate returns ``True`` (e.g. "all correct proposers have
      decided"),
    * the network is quiescent (no messages in flight), or
    * the ``max_messages`` safety valve trips (which tests treat as a
      liveness failure).

    Because delivery order is entirely determined by the network's seeded
    delay model, a runtime run is a pure function of (nodes, seed, delay
    model) — the determinism tests rely on this.
    """

    def __init__(self, network: Network) -> None:
        self.network = network

    def run(
        self,
        stop_when: Optional[Callable[[], bool]] = None,
        max_messages: int = 200_000,
    ) -> RunResult:
        """Deliver messages until the stop condition, quiescence or the cap."""
        self.network.start()
        delivered = 0
        stopped = False
        while delivered < max_messages:
            if stop_when is not None and stop_when():
                stopped = True
                break
            envelope = self.network.step()
            if envelope is None:
                break
            delivered += 1
        return RunResult(
            delivered=delivered,
            end_time=self.network.now,
            stopped_by_predicate=stopped,
            pending_messages=self.network.pending(),
            metrics=self.network.metrics,
        )

    def run_until_quiescent(self, max_messages: int = 200_000) -> RunResult:
        """Deliver every message currently in the system (and those they spawn)."""
        return self.run(stop_when=None, max_messages=max_messages)

    def run_until_decided(
        self, pids: List[Hashable], max_messages: int = 200_000
    ) -> RunResult:
        """Run until every process in ``pids`` has recorded a decision."""
        metrics = self.network.metrics

        def all_decided() -> bool:
            decided = set(metrics.decided_pids())
            return all(pid in decided for pid in pids)

        return self.run(stop_when=all_decided, max_messages=max_messages)
