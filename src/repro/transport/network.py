"""Simulated asynchronous network with authenticated reliable channels.

Since the kernel refactor this module is a thin facade over
:class:`repro.sim.SimKernel`: the network owns the membership, the metrics
and the messaging semantics (authentication, causal depth, reliable
delivery), while the kernel owns the typed event queue, the clock, the RNG
and the fault state (crashes, partitions).  The public seed API —
``add_node`` / ``submit`` / ``step`` / ``pending`` / ``delivery_log`` — is
unchanged, and a seed run (no timers, no faults) replays bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from repro.metrics.collector import MetricsCollector
from repro.sim.events import (
    Event,
    Inject,
    MessageDelivery,
    NodeCrash,
    NodeRecover,
    PartitionHeal,
    PartitionStart,
    Timer,
)
from repro.sim.faults import validate_partition_groups
from repro.sim.kernel import SimKernel, invalid_time
from repro.sim.scheduler import DelayModelScheduler, Scheduler
from repro.transport.delays import DelayModel, UniformDelay
from repro.transport.message import Envelope
from repro.transport.node import Node, NodeContext


class Network:
    """The asynchronous message-passing system of Section 3.

    Guarantees provided (matching the model):

    * **Reliable channels** — every submitted message is eventually delivered
      exactly once; nothing is dropped or duplicated by the transport.
      Crashes and partitions only *hold* traffic (released on recovery /
      heal), so a fault is indistinguishable from a long delay — exactly the
      power the asynchronous adversary already has.
    * **Authenticated channels** — the receiver learns the true sender;
      a Byzantine process cannot submit a message under another identity
      because :meth:`submit` takes the sender from the registered node handle.
    * **Unbounded (but finite) delays** — delivery order and timing are
      controlled by a pluggable :class:`~repro.sim.scheduler.Scheduler`
      (by default wrapping a seed-era :class:`DelayModel`), driven by a
      seeded RNG so every run is exactly reproducible.
    * **Complete graph** — any process can message any other (unless a
      scripted partition is active, in which case cross-traffic waits).

    The network also maintains the causal message-delay counter used by the
    latency experiments: an envelope's depth is one more than its sender's
    causal depth at send time, and delivery raises the receiver's causal
    depth to at least the envelope's depth.
    """

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        metrics: Optional[MetricsCollector] = None,
        scheduler: Optional[Scheduler] = None,
    ) -> None:
        if delay_model is not None and scheduler is not None:
            raise ValueError(
                "pass either delay_model or scheduler, not both (a scheduler "
                "fully determines delays; wrap a DelayModel in "
                "DelayModelScheduler if you want to combine them)"
            )
        self._nodes: Dict[Hashable, Node] = {}
        self._pids: Tuple[Hashable, ...] = ()
        self._seq = 0
        self._scheduler = scheduler or DelayModelScheduler(delay_model or UniformDelay())
        self._kernel = SimKernel(seed=seed)
        self.metrics = metrics or MetricsCollector()
        self._delivery_log: List[Envelope] = []
        self._started = False

    # -- topology ---------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register ``node`` and bind it to this network."""
        if self._started:
            raise RuntimeError("cannot add nodes after the simulation started")
        if node.pid in self._nodes:
            raise ValueError(f"duplicate process id {node.pid!r}")
        self._nodes[node.pid] = node
        self._pids = tuple(self._nodes.keys())
        node.bind(NodeContext(self, node.pid))
        return node

    def add_nodes(self, nodes: List[Node]) -> List[Node]:
        """Register several nodes at once (in the given order)."""
        for node in nodes:
            self.add_node(node)
        return nodes

    @property
    def pids(self) -> Tuple[Hashable, ...]:
        """All registered process identifiers."""
        return self._pids

    @property
    def nodes(self) -> Dict[Hashable, Node]:
        """Mapping from pid to node (read-only by convention)."""
        return self._nodes

    def node(self, pid: Hashable) -> Node:
        """Return the node registered under ``pid``."""
        return self._nodes[pid]

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._kernel.now

    @property
    def rng(self):
        """The run's seeded random number generator (shared with scheduler)."""
        return self._kernel.rng

    @property
    def kernel(self) -> SimKernel:
        """The underlying discrete-event kernel (queue, clock, fault state)."""
        return self._kernel

    @property
    def scheduler(self) -> Scheduler:
        """The active scheduling policy."""
        return self._scheduler

    # -- sending ------------------------------------------------------------------

    def submit(self, sender: Hashable, dest: Hashable, payload: Any) -> Envelope:
        """Queue one message from ``sender`` to ``dest``.

        Called by :class:`NodeContext.send`; the sender identity is taken
        from the context, never from the payload, which is what makes the
        channels authenticated.
        """
        nodes = self._nodes
        if dest not in nodes:
            raise ValueError(f"unknown destination {dest!r}")
        kernel = self._kernel
        self._seq += 1
        envelope = Envelope(
            sender=sender,
            dest=dest,
            payload=payload,
            send_time=kernel.now,
            depth=nodes[sender].causal_depth + 1,
            seq=self._seq,
        )
        delay = self._scheduler.delay(envelope, kernel.rng)
        # Inline invalid_time(): this runs once per send, the hottest path.
        if delay < 0 or delay != delay or delay == float("inf"):
            raise ValueError(f"scheduler produced invalid delay {delay!r}")
        kernel.schedule_at(MessageDelivery(envelope), kernel.now + delay)
        kernel.pending_messages += 1
        self.metrics.record_send(sender, dest, envelope.mtype, envelope)
        return envelope

    # -- timers & faults ------------------------------------------------------------

    def schedule_timer(
        self, pid: Hashable, delay: float, tag: str, payload: Any = None
    ) -> Timer:
        """Arm a timer firing ``pid``'s :meth:`Node.on_timer` after ``delay``.

        Returns the :class:`Timer` event, which doubles as the cancellation
        handle (``timer.cancel()``).
        """
        if pid not in self._nodes:
            raise ValueError(f"unknown process {pid!r}")
        if invalid_time(delay):
            raise ValueError(f"invalid timer delay {delay!r}")
        timer = Timer(pid, tag, payload)
        self._kernel.schedule(timer, delay)
        return timer

    def crash_node(self, pid: Hashable, at: Optional[float] = None) -> Event:
        """Schedule ``pid``'s crash at absolute time ``at`` (default: now)."""
        if pid not in self._nodes:
            raise ValueError(f"unknown process {pid!r}")
        return self._kernel.schedule_at(NodeCrash(pid), self.now if at is None else at)

    def recover_node(self, pid: Hashable, at: Optional[float] = None) -> Event:
        """Schedule ``pid``'s recovery at absolute time ``at`` (default: now)."""
        if pid not in self._nodes:
            raise ValueError(f"unknown process {pid!r}")
        return self._kernel.schedule_at(NodeRecover(pid), self.now if at is None else at)

    def start_partition(
        self, *groups: Iterable[Hashable], at: Optional[float] = None
    ) -> Event:
        """Schedule a partition into ``groups`` at ``at`` (default: now)."""
        frozen = tuple(frozenset(group) for group in groups)
        validate_partition_groups(frozen)
        for group in frozen:
            for pid in group:
                if pid not in self._nodes:
                    raise ValueError(f"unknown process {pid!r} in partition group")
        return self._kernel.schedule_at(
            PartitionStart(frozen), self.now if at is None else at
        )

    def heal_partition(self, at: Optional[float] = None) -> Event:
        """Schedule the partition heal at ``at`` (default: now)."""
        return self._kernel.schedule_at(PartitionHeal(), self.now if at is None else at)

    def inject(
        self,
        fn: Callable[["Network"], Any],
        at: Optional[float] = None,
        label: str = "inject",
    ) -> Event:
        """Schedule ``fn(network)`` at ``at`` — arbitrary scripted action."""
        return self._kernel.schedule_at(Inject(fn, label), self.now if at is None else at)

    def apply_fault_plan(self, plan) -> None:
        """Schedule every action of a :class:`~repro.sim.faults.FaultPlan`."""
        plan.apply(self)

    # -- running -------------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's ``on_start`` hook (once)."""
        if self._started:
            return
        self._started = True
        for node in self._nodes.values():
            node.on_start()

    def pending(self) -> int:
        """Number of messages currently in flight (including held ones)."""
        return self._kernel.pending_messages

    def process_next_event(self) -> Tuple[Optional[Event], Optional[Envelope]]:
        """Pop and process exactly one kernel event.

        Returns ``(event, delivered_envelope)``: the envelope is non-``None``
        only when the event resulted in an actual message delivery (a
        delivery held back by a crash or partition processes the event but
        delivers nothing).  ``(None, None)`` means the queue is exhausted.
        """
        if not self._started:
            self.start()
        event = self._kernel.pop()
        if event is None:
            return None, None
        return event, self._dispatch(event)

    #: Safety valve for :meth:`step`: a scenario whose queue only ever yields
    #: non-delivery events (e.g. a self-rearming retry timer whose messages
    #: are all held by a never-healed partition) would otherwise spin forever
    #: inside one call.  Exceeding this is a scenario bug, reported loudly.
    MAX_EVENTS_PER_STEP = 100_000

    def step(self) -> Optional[Envelope]:
        """Deliver the next message (or return ``None`` if the queue is empty).

        Non-message events (timers, faults, injections) encountered along the
        way are processed transparently, preserving the seed semantics of
        "advance the simulation by one delivery".  If ``MAX_EVENTS_PER_STEP``
        events pass without a single delivery, a :class:`RuntimeError` is
        raised instead of looping forever (use :class:`SimulationRuntime`,
        whose event valve stops such runs gracefully).
        """
        if not self._started:
            self.start()
        pop = self._kernel.pop
        dispatch = self._dispatch
        stalled = 0
        while True:
            event = pop()
            if event is None:
                return None
            envelope = dispatch(event)
            if envelope is not None:
                return envelope
            stalled += 1
            if stalled >= self.MAX_EVENTS_PER_STEP:
                raise RuntimeError(
                    f"no message delivered within {stalled} events: the "
                    "scenario generates timer/fault events forever while "
                    "every message stays held (crashed node or unhealed "
                    "partition?)"
                )

    # -- event dispatch ---------------------------------------------------------------

    def _dispatch(self, event: Event) -> Optional[Envelope]:
        kernel = self._kernel
        cls = event.__class__
        if cls is MessageDelivery:
            envelope = event.envelope
            dest = envelope.dest
            if dest in kernel.crashed:
                kernel.hold_for_node(dest, event)
                return None
            if kernel.partition_groups and kernel.link_blocked(envelope.sender, dest):
                kernel.hold_for_partition(event)
                return None
            envelope.deliver_time = kernel.now
            receiver = self._nodes[dest]
            if receiver.causal_depth < envelope.depth:
                receiver.causal_depth = envelope.depth
            kernel.pending_messages -= 1
            self.metrics.record_delivery(envelope.sender, dest, envelope.mtype)
            self._delivery_log.append(envelope)
            receiver.on_message(envelope.sender, envelope.payload)
            return envelope
        if cls is Timer:
            pid = event.pid
            if pid in kernel.crashed:
                kernel.hold_for_node(pid, event)
                return None
            self._nodes[pid].on_timer(event.tag, event.payload)
            return None
        if cls is NodeCrash:
            if event.pid not in kernel.crashed:
                kernel.apply_crash(event.pid)
                self._nodes[event.pid].on_crash()
            return None
        if cls is NodeRecover:
            if event.pid in kernel.crashed:
                kernel.apply_recover(event.pid)
                self._nodes[event.pid].on_recover()
            return None
        if cls is PartitionStart:
            kernel.apply_partition(event.groups)
            return None
        if cls is PartitionHeal:
            kernel.apply_heal()
            return None
        if cls is Inject:
            event.fn(self)
            return None
        raise TypeError(f"unknown event type {cls.__name__}")  # pragma: no cover

    @property
    def delivery_log(self) -> List[Envelope]:
        """Every delivered envelope, in delivery order (for trace tests)."""
        return self._delivery_log
