"""Simulated asynchronous network with authenticated reliable channels."""

from __future__ import annotations

import heapq
import random
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.metrics.collector import MetricsCollector
from repro.transport.delays import DelayModel, UniformDelay
from repro.transport.message import Envelope, estimate_size
from repro.transport.node import Node, NodeContext


class Network:
    """The asynchronous message-passing system of Section 3.

    Guarantees provided (matching the model):

    * **Reliable channels** — every submitted message is eventually delivered
      exactly once; nothing is dropped or duplicated by the transport.
    * **Authenticated channels** — the receiver learns the true sender;
      a Byzantine process cannot submit a message under another identity
      because :meth:`submit` takes the sender from the registered node handle.
    * **Unbounded (but finite) delays** — delivery order and timing are
      controlled by a pluggable :class:`DelayModel`, driven by a seeded RNG
      so every run is exactly reproducible.
    * **Complete graph** — any process can message any other.

    The network also maintains the causal message-delay counter used by the
    latency experiments: an envelope's depth is one more than its sender's
    causal depth at send time, and delivery raises the receiver's causal
    depth to at least the envelope's depth.
    """

    def __init__(
        self,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        metrics: Optional[MetricsCollector] = None,
    ) -> None:
        self._nodes: Dict[Hashable, Node] = {}
        self._pids: Tuple[Hashable, ...] = ()
        self._queue: List[Tuple[float, int, Envelope]] = []
        self._seq = 0
        self._delay_model = delay_model or UniformDelay()
        self._rng = random.Random(seed)
        self._now = 0.0
        self.metrics = metrics or MetricsCollector()
        self._delivery_log: List[Envelope] = []
        self._started = False

    # -- topology ---------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register ``node`` and bind it to this network."""
        if self._started:
            raise RuntimeError("cannot add nodes after the simulation started")
        if node.pid in self._nodes:
            raise ValueError(f"duplicate process id {node.pid!r}")
        self._nodes[node.pid] = node
        self._pids = tuple(self._nodes.keys())
        node.bind(NodeContext(self, node.pid))
        return node

    def add_nodes(self, nodes: List[Node]) -> List[Node]:
        """Register several nodes at once (in the given order)."""
        for node in nodes:
            self.add_node(node)
        return nodes

    @property
    def pids(self) -> Tuple[Hashable, ...]:
        """All registered process identifiers."""
        return self._pids

    @property
    def nodes(self) -> Dict[Hashable, Node]:
        """Mapping from pid to node (read-only by convention)."""
        return self._nodes

    def node(self, pid: Hashable) -> Node:
        """Return the node registered under ``pid``."""
        return self._nodes[pid]

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def rng(self) -> random.Random:
        """The run's seeded random number generator (shared with delay model)."""
        return self._rng

    # -- sending ------------------------------------------------------------------

    def submit(self, sender: Hashable, dest: Hashable, payload: Any) -> Envelope:
        """Queue one message from ``sender`` to ``dest``.

        Called by :class:`NodeContext.send`; the sender identity is taken
        from the context, never from the payload, which is what makes the
        channels authenticated.
        """
        if dest not in self._nodes:
            raise ValueError(f"unknown destination {dest!r}")
        sender_node = self._nodes[sender]
        self._seq += 1
        envelope = Envelope(
            sender=sender,
            dest=dest,
            payload=payload,
            send_time=self._now,
            depth=sender_node.causal_depth + 1,
            seq=self._seq,
            size=estimate_size(payload),
        )
        delay = self._delay_model.delay(envelope, self._rng)
        if delay < 0 or delay != delay or delay == float("inf"):
            raise ValueError(f"delay model produced invalid delay {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, self._seq, envelope))
        self.metrics.record_send(sender, dest, envelope.mtype, envelope.size)
        return envelope

    # -- running -------------------------------------------------------------------

    def start(self) -> None:
        """Invoke every node's ``on_start`` hook (once)."""
        if self._started:
            return
        self._started = True
        for node in self._nodes.values():
            node.on_start()

    def pending(self) -> int:
        """Number of messages currently in flight."""
        return len(self._queue)

    def step(self) -> Optional[Envelope]:
        """Deliver the next message (or return ``None`` if the queue is empty)."""
        if not self._started:
            self.start()
        if not self._queue:
            return None
        deliver_time, _seq, envelope = heapq.heappop(self._queue)
        self._now = max(self._now, deliver_time)
        delivered = envelope.delivered_at(self._now)
        receiver = self._nodes[delivered.dest]
        receiver.causal_depth = max(receiver.causal_depth, delivered.depth)
        self.metrics.record_delivery(delivered.sender, delivered.dest, delivered.mtype)
        self._delivery_log.append(delivered)
        receiver.on_message(delivered.sender, delivered.payload)
        return delivered

    @property
    def delivery_log(self) -> List[Envelope]:
        """Every delivered envelope, in delivery order (for trace tests)."""
        return self._delivery_log
