"""Event-driven process abstraction bound to the simulated network.

Every algorithm participant (correct or Byzantine, proposer, acceptor,
replica or client) is a :class:`Node`.  Nodes are purely reactive: the
runtime calls :meth:`Node.on_start` once and :meth:`Node.on_message` for each
delivered envelope; nodes emit messages through their :class:`NodeContext`.

This mirrors the "upon event" style of the paper's pseudocode: each handler
updates local state and the node re-evaluates its enabled guards (the
algorithm classes implement that re-evaluation in ``_drain`` style methods).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Iterable, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.events import Timer
    from repro.transport.network import Network


class NodeContext:
    """Capabilities the network grants to a node.

    A context exposes only what the model allows a process to do: learn the
    membership, send point-to-point messages (over authenticated channels —
    the receiver learns the true sender), and read the simulated clock.  It
    deliberately does not allow spoofing the sender or inspecting other
    nodes' state.
    """

    def __init__(self, network: "Network", pid: Hashable) -> None:
        self._network = network
        self._pid = pid

    # -- identity & membership -------------------------------------------------

    @property
    def pid(self) -> Hashable:
        """This node's process identifier."""
        return self._pid

    @property
    def all_pids(self) -> Tuple[Hashable, ...]:
        """Identifiers of every process in the system (complete graph)."""
        return self._network.pids

    @property
    def n(self) -> int:
        """Total number of processes ``n``."""
        return len(self._network.pids)

    def now(self) -> float:
        """Current simulated time."""
        return self._network.now

    @property
    def metrics(self):
        """The network's :class:`~repro.metrics.MetricsCollector`.

        Processes use this to record decisions (value + causal depth) so the
        runtime can stop once every correct process decided and experiments
        can read latency/complexity figures without poking into node state.
        """
        return self._network.metrics

    # -- communication ---------------------------------------------------------

    def send(self, dest: Hashable, payload: Any) -> None:
        """Send ``payload`` to ``dest`` over the authenticated channel."""
        self._network.submit(self._pid, dest, payload)

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        """Best-effort broadcast: one point-to-point send per process.

        This is the plain ``Broadcast`` of the pseudocode (e.g. Algorithm 1
        line 18) — *not* the Byzantine reliable broadcast, which lives in
        :mod:`repro.broadcast` and is built on top of this primitive.
        ``include_self`` defaults to ``True`` because the pseudocode's
        "send to all" includes the sender playing its own acceptor role.
        """
        for dest in self._network.pids:
            if dest == self._pid and not include_self:
                continue
            self.send(dest, payload)

    def multicast(self, dests: Iterable[Hashable], payload: Any) -> None:
        """Send ``payload`` to each process in ``dests``."""
        for dest in dests:
            self.send(dest, payload)

    # -- timers ------------------------------------------------------------------

    def set_timer(self, delay: float, tag: str, payload: Any = None) -> "Timer":
        """Arm a local timer: after ``delay``, :meth:`Node.on_timer` fires.

        Returns the timer event, which doubles as the cancellation handle
        (``handle.cancel()``).  Timers are process-local — they model a
        process's own clock, not the network — so they keep firing under
        partitions, and are held (not lost) while the process is crashed.
        """
        return self._network.schedule_timer(self._pid, delay, tag, payload)

    def cancel_timer(self, handle: "Timer") -> None:
        """Cancel a timer previously armed with :meth:`set_timer`."""
        handle.cancel()


class Node:
    """Base class for all simulated processes."""

    def __init__(self, pid: Hashable) -> None:
        self.pid = pid
        self.ctx: Optional[NodeContext] = None
        #: Causal message-delay counter: the largest chain of messages that
        #: causally precedes this node's current state.  Maintained by the
        #: network on every delivery; algorithms read it when they decide.
        self.causal_depth: int = 0
        #: Free-form event log (``(time, label, data)``) used by tests and
        #: experiments to trace interesting transitions without prints.
        self.trace: List[Tuple[float, str, Any]] = []

    # -- lifecycle hooks (overridden by algorithm implementations) --------------

    def bind(self, ctx: NodeContext) -> None:
        """Attach the node to a network; called by :meth:`Network.add_node`."""
        self.ctx = ctx

    def on_start(self) -> None:
        """Called once before any message is delivered."""

    def on_message(self, sender: Hashable, payload: Any) -> None:
        """Called for every delivered message (``sender`` is authentic)."""

    def on_timer(self, tag: str, payload: Any = None) -> None:
        """Called when a timer armed via :meth:`set_timer` fires."""

    def on_crash(self) -> None:
        """Called when the kernel takes this process down (scripted crash).

        The transport holds all traffic and timers addressed to a crashed
        process and hands them over on recovery, so overriding this hook is
        only needed to model *state* effects of the crash.
        """

    def on_recover(self) -> None:
        """Called when the kernel brings this process back up."""

    # -- convenience -----------------------------------------------------------

    def set_timer(self, delay: float, tag: str, payload: Any = None):
        """Arm a local timer (see :meth:`NodeContext.set_timer`)."""
        if self.ctx is None:
            raise RuntimeError("node is not bound to a network")
        return self.ctx.set_timer(delay, tag, payload)

    def log_event(self, label: str, data: Any = None) -> None:
        """Append an entry to the node's trace."""
        time = self.ctx.now() if self.ctx is not None else 0.0
        self.trace.append((time, label, data))

    @property
    def is_byzantine(self) -> bool:
        """Whether this node is controlled by the adversary.

        The base class is honest; Byzantine wrappers in
        :mod:`repro.byzantine` override this.  The network itself never looks
        at this flag (the adversary gets no extra power from the transport) —
        it exists purely so experiments and checkers can tell the two
        populations apart when evaluating the correctness properties, which
        are quantified over correct processes only.
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} pid={self.pid!r}>"
