"""Message envelope used by the simulated network.

Algorithm-level messages (``ack_req``, ``nack``, reliable-broadcast echoes,
RSM client requests, ...) are plain dataclasses defined next to each
algorithm.  The transport wraps every such payload in an :class:`Envelope`
when it is sent; the envelope records the true sender (authenticated
channels), the destination, the simulated send/delivery times, and the causal
depth used for the message-delay metric of the paper's latency theorems.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional


def estimate_size(payload: Any) -> int:
    """Rough structural size estimate (in abstract units) of a payload.

    Used by the metrics layer to confirm the message-size trade-off the paper
    mentions for SbS ("it sends messages that could have size O(n^2)",
    Section 8).  The estimate counts contained items recursively rather than
    serialised bytes, which is enough to observe the asymptotic shape.
    """
    seen = 0
    stack = [payload]
    while stack:
        item = stack.pop()
        seen += 1
        if isinstance(item, (list, tuple, set, frozenset)):
            stack.extend(item)
        elif isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())
        elif hasattr(item, "__dataclass_fields__"):
            stack.extend(getattr(item, name) for name in item.__dataclass_fields__)
        elif isinstance(item, (str, bytes)):
            seen += len(item) // 16
    return seen


@dataclass(frozen=True)
class Envelope:
    """One message in flight on the simulated network."""

    #: True sender process id (stamped by the network — unforgeable).
    sender: Hashable
    #: Destination process id.
    dest: Hashable
    #: The algorithm-level message object.
    payload: Any
    #: Simulated time at which the send happened.
    send_time: float
    #: Simulated time at which the message is delivered (filled at delivery).
    deliver_time: Optional[float] = None
    #: Causal depth: 1 + the causal depth of the sender at send time.  The
    #: maximum causal depth observed at a process when it decides is the
    #: "number of message delays" of the paper's Theorems 3 and 8.
    depth: int = 1
    #: Monotonic sequence number (tie-breaker for deterministic ordering).
    seq: int = 0
    #: Structural size estimate of the payload.
    size: int = field(default=0)

    def delivered_at(self, time: float) -> "Envelope":
        """Return a copy of the envelope stamped with its delivery time."""
        return Envelope(
            sender=self.sender,
            dest=self.dest,
            payload=self.payload,
            send_time=self.send_time,
            deliver_time=time,
            depth=self.depth,
            seq=self.seq,
            size=self.size,
        )

    @property
    def mtype(self) -> str:
        """Best-effort message-type label for metrics and traces."""
        payload = self.payload
        mtype = getattr(payload, "mtype", None)
        if isinstance(mtype, str):
            return mtype
        return type(payload).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Envelope({self.sender!r}->{self.dest!r} {self.mtype} "
            f"t={self.send_time:.3f} depth={self.depth})"
        )
