"""Asynchronous message-passing substrate (discrete-event simulation).

The paper's system model (Section 3): processes "communicate by exchanging
messages over asynchronous authenticated reliable point-to-point
communication links (messages are never lost on links, but delays are
unbounded)" over a complete communication graph.

This package provides that substrate as a deterministic discrete-event
simulator:

* :class:`Envelope` — the on-the-wire unit; the simulator stamps the *true*
  sender on every envelope, which models authenticated channels (a Byzantine
  process cannot impersonate another process).
* Delay models (:mod:`repro.transport.delays`) — seeded random delays,
  fixed delays, and adversarial models that can reorder and stall specific
  links for arbitrarily long (but finite) periods, which is exactly the power
  an asynchronous adversary has.
* :class:`Network` + :class:`SimulationRuntime` — event queue, delivery loop,
  causal message-delay accounting (the metric used by Theorems 3 and 8), and
  deterministic replay from a seed.
* :class:`Node` — the event-driven process abstraction every algorithm
  implementation builds on.
"""

from repro.transport.message import Envelope, estimate_size
from repro.transport.delays import (
    DelayModel,
    FixedDelay,
    UniformDelay,
    SkewedPairDelay,
    LinkPartitionDelay,
    AdversarialTargetedDelay,
)
from repro.transport.node import Node, NodeContext
from repro.transport.network import Network
from repro.transport.runtime import SimulationRuntime, RunResult
from repro.sim import (
    DelayModelScheduler,
    FaultPlan,
    RandomScheduler,
    Scheduler,
    SimKernel,
    WorstCaseScheduler,
)

__all__ = [
    "Envelope",
    "estimate_size",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "SkewedPairDelay",
    "LinkPartitionDelay",
    "AdversarialTargetedDelay",
    "Node",
    "NodeContext",
    "Network",
    "SimulationRuntime",
    "RunResult",
    # re-exported from the simulation kernel for convenience
    "SimKernel",
    "Scheduler",
    "DelayModelScheduler",
    "RandomScheduler",
    "WorstCaseScheduler",
    "FaultPlan",
]
