"""Experiment harness: scenario builders, workload generators, experiments.

:mod:`repro.harness.workloads` builds ready-to-run simulated clusters for
every algorithm (WTS, GWTS, SbS, GSbS, the crash baselines and the RSM),
with configurable size, failure threshold, Byzantine population, delay model
and seed, and returns a :class:`~repro.harness.workloads.ScenarioResult`
exposing the proposals, decisions, metrics and specification checks.

:mod:`repro.harness.experiments` implements the per-table/figure experiment
runners E1–E13 (E1–E10 from DESIGN.md plus the E11 ablation, E12
partition-churn and E13 sharded/batched scaling extensions); the
``benchmarks/`` directory contains
one pytest-benchmark target per experiment, and ``EXPERIMENTS.md`` records
the paper-vs-measured outcome of each.
"""

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    run_ablation_experiment,
    run_baseline_comparison,
    run_breadth_experiment,
    run_chain_experiment,
    run_gwts_liveness_experiment,
    run_gwts_messages_experiment,
    run_partition_churn_experiment,
    run_resilience_experiment,
    run_rsm_experiment,
    run_sbs_experiment,
    run_shard_scaling_experiment,
    run_wts_latency_experiment,
    run_wts_messages_experiment,
)
from repro.harness.workloads import (
    OpenLoopReport,
    ScenarioResult,
    default_proposals,
    member_pids,
    run_crash_gla_scenario,
    run_crash_la_scenario,
    run_gsbs_scenario,
    run_gwts_scenario,
    run_open_loop_scenario,
    run_rsm_scenario,
    run_sbs_scenario,
    run_sharded_rsm_scenario,
    run_wts_scenario,
)

__all__ = [
    "ScenarioResult",
    "member_pids",
    "default_proposals",
    "run_wts_scenario",
    "run_sbs_scenario",
    "run_gwts_scenario",
    "run_gsbs_scenario",
    "run_crash_la_scenario",
    "run_crash_gla_scenario",
    "run_rsm_scenario",
    "run_sharded_rsm_scenario",
    "run_open_loop_scenario",
    "OpenLoopReport",
    "run_chain_experiment",
    "run_resilience_experiment",
    "run_wts_latency_experiment",
    "run_wts_messages_experiment",
    "run_sbs_experiment",
    "run_gwts_messages_experiment",
    "run_gwts_liveness_experiment",
    "run_rsm_experiment",
    "run_breadth_experiment",
    "run_baseline_comparison",
    "run_ablation_experiment",
    "run_partition_churn_experiment",
    "run_shard_scaling_experiment",
    "ALL_EXPERIMENTS",
]
