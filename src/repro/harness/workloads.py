"""Scenario builders: assemble and run simulated clusters for every algorithm.

Every builder follows the same recipe:

1. create the membership (``p0 .. p{n-1}``) and an engine backend resolved
   through the :mod:`repro.engine.backends` registry (``backend="kernel"``
   — the deterministic reference — ``"turbo"``, the benchmark fast path
   executing the same schedule, or ``"async"``, real asyncio I/O reporting
   wall-clock time) with the requested delay model and seed;
2. instantiate correct protocol cores for the first ``n - b`` slots and
   Byzantine cores (produced by user-supplied factories) for the last ``b``
   slots;
3. run the engine until the scenario's stop condition;
4. wrap everything in a :class:`ScenarioResult` that knows how to extract
   proposals, decisions and Byzantine-injected values and to run the
   specification checkers.

Byzantine factories receive ``(pid, lattice, members, f)`` (plus the shared
key registry for the signature algorithms) and return any
:class:`~repro.engine.ProtocolCore`; the classes in :mod:`repro.byzantine`
are directly usable via small lambdas, e.g.::

    run_wts_scenario(n=4, f=1, byzantine_factories=[
        lambda pid, lat, members, f: SilentByzantine(pid)
    ])
"""

from __future__ import annotations
from collections.abc import Callable, Hashable, Mapping, Sequence

from dataclasses import dataclass, field
from typing import Any

from repro.baselines.crash_gla import CrashGLAProcess
from repro.baselines.crash_la import CrashLAProcess
from repro.core.gsbs import GSbSProcess
from repro.core.gwts import GWTSProcess
from repro.core.sbs import SbSProcess
from repro.core.spec import LACheckResult, check_gla_run, check_la_run
from repro.core.wts import WTSProcess
from repro.crypto.signatures import KeyRegistry
from repro.engine import RunResult, create_engine, latency_summary
from repro.engine.core import ProtocolCore
from repro.engine.delays import DelayModel, UniformDelay
from repro.lattice.base import JoinSemilattice, LatticeElement
from repro.lattice.set_lattice import SetLattice
from repro.metrics.collector import MetricsCollector
from repro.rsm.client import ByzantineClient, RSMClient
from repro.rsm.replica import Replica
from repro.rsm.sharding import ShardedRSMClient, partition_replicas
from repro.sim.axes import parse_fault_plan, parse_scheduler
from repro.sim.faults import FaultPlan

#: Signature of a Byzantine core factory.
ByzantineFactory = Callable[..., ProtocolCore]

#: Builders accept a Scheduler/FaultPlan object or its string spec (the
#: orchestrator's JSON-able axis form, see :mod:`repro.sim.axes`).
SchedulerSpec = Any | None
FaultPlanSpec = Any | None


def member_pids(n: int, prefix: str = "p") -> list[str]:
    """Standard membership identifiers ``p0 .. p{n-1}``."""
    return [f"{prefix}{i}" for i in range(n)]


def default_proposals(lattice: SetLattice, pids: Sequence[Hashable]) -> dict[Hashable, LatticeElement]:
    """One distinct singleton proposal per process (the Figure 1 workload)."""
    return {pid: frozenset({f"v-{pid}"}) for pid in pids}


@dataclass
class ScenarioResult:
    """Everything a test, benchmark or example needs about one finished run."""

    #: The engine that executed the run (kernel or turbo backend).
    engine: Any
    nodes: dict[Hashable, ProtocolCore]
    correct_pids: list[Hashable]
    byzantine_pids: list[Hashable]
    lattice: JoinSemilattice
    f: int
    run: RunResult
    #: Extra per-scenario payload (e.g. client histories for RSM runs).
    extras: dict[str, Any] = field(default_factory=dict)

    # -- common views -----------------------------------------------------------------

    @property
    def metrics(self) -> MetricsCollector:
        """The run's metrics collector."""
        return self.engine.metrics

    @property
    def backend(self) -> str:
        """Name of the engine backend that executed the run."""
        return self.engine.name

    def correct_nodes(self) -> list[ProtocolCore]:
        """The correct processes, in membership order."""
        return [self.nodes[pid] for pid in self.correct_pids]

    def proposals(self) -> dict[Hashable, LatticeElement]:
        """``pid -> proposal`` for correct single-shot proposers."""
        return {
            pid: getattr(self.nodes[pid], "proposal")
            for pid in self.correct_pids
            if hasattr(self.nodes[pid], "proposal")
        }

    def inputs(self) -> dict[Hashable, list[LatticeElement]]:
        """``pid -> received input values`` for correct generalized proposers."""
        return {
            pid: list(getattr(self.nodes[pid], "received_inputs", []))
            for pid in self.correct_pids
        }

    def decisions(self) -> dict[Hashable, list[LatticeElement]]:
        """``pid -> decision sequence`` for correct processes."""
        return {
            pid: list(getattr(self.nodes[pid], "decisions", []))
            for pid in self.correct_pids
        }

    def byzantine_values(self) -> list[LatticeElement]:
        """Lattice elements the Byzantine nodes injected (best effort).

        Collected from the Byzantine nodes' declared attack values so the
        Non-Triviality bound can be evaluated; behaviours that only send
        garbage (non-elements) contribute nothing because correct processes
        filter those out.
        """
        values: list[LatticeElement] = []
        for pid in self.byzantine_pids:
            node = self.nodes[pid]
            # Wrapper behaviours (e.g. CrashByzantine) delegate to an inner
            # honest process; its proposal counts as a Byzantine input too.
            candidates = [node, getattr(node, "inner", None)]
            for candidate in candidates:
                if candidate is None:
                    continue
                for attr in ("proposal", "value_a", "value_b", "injected"):
                    value = getattr(candidate, attr, None)
                    if value is not None and self.lattice.is_element(value):
                        values.append(value)
                pool = getattr(candidate, "equivocation_pool", None) or getattr(
                    candidate, "values", None
                )
                if pool:
                    values.extend(v for v in pool if self.lattice.is_element(v))
        return values

    # -- checkers ----------------------------------------------------------------------

    def check_la(self, require_liveness: bool = True) -> LACheckResult:
        """Run the single-shot LA specification checker on this scenario."""
        return check_la_run(
            self.lattice,
            self.proposals(),
            self.decisions(),
            byzantine_values=self.byzantine_values(),
            f=self.f,
            require_liveness=require_liveness,
        )

    def check_gla(self, require_all_inputs_decided: bool = True) -> LACheckResult:
        """Run the generalized LA specification checker on this scenario."""
        return check_gla_run(
            self.lattice,
            self.inputs(),
            self.decisions(),
            byzantine_values=self.byzantine_values(),
            require_all_inputs_decided=require_all_inputs_decided,
        )


# ---------------------------------------------------------------------------
# Internal assembly helpers
# ---------------------------------------------------------------------------


def _split_members(
    n: int, byzantine_factories: Sequence[ByzantineFactory]
) -> tuple[list[str], list[str], list[str]]:
    pids = member_pids(n)
    b = len(byzantine_factories)
    if b > n:
        raise ValueError("more Byzantine factories than processes")
    return pids, pids[: n - b], pids[n - b :]


def _build_engine(
    delay_model: DelayModel | None,
    seed: int,
    scheduler: SchedulerSpec,
    backend: str,
    pids: Sequence[Hashable],
    f: int,
    **engine_kwargs: Any,
):
    """One engine per scenario.

    ``scheduler`` may be a :class:`Scheduler`, a string spec (see
    :mod:`repro.sim.axes`) or ``None``.  An explicit scheduler *overrides*
    the builder's delay model — that is what lets the orchestrator's
    ``scheduler=`` axis re-run any experiment (which typically picks its own
    delay model) under an adversarial schedule without each runner having to
    special-case the combination.  Membership-dependent specs
    (``worst-case:victims=quorum``) resolve against ``pids``/``f``.
    ``backend`` picks the execution engine via the registry; the simulated
    backends (and the async backend's in-process determinism-lite transport)
    reproduce the same schedule, so decided values are backend-independent.
    """
    if isinstance(scheduler, str):
        scheduler = parse_scheduler(scheduler, pids=pids, f=f)
    if scheduler is not None:
        return create_engine(backend, seed=seed, scheduler=scheduler, **engine_kwargs)
    return create_engine(
        backend, delay_model=delay_model or UniformDelay(), seed=seed, **engine_kwargs
    )


def _resolve_fault_plan(
    fault_plan: FaultPlanSpec,
    pids: Sequence[Hashable],
    correct: Sequence[Hashable],
) -> FaultPlan | None:
    """Resolve a fault-plan string spec against this scenario's membership."""
    if isinstance(fault_plan, str):
        return parse_fault_plan(fault_plan, pids=pids, correct=correct)
    return fault_plan


def _run(
    engine,
    stop_when: Callable[[], bool] | None,
    max_messages: int,
    fault_plan: FaultPlan | None = None,
    max_wall_s: float | None = None,
) -> RunResult:
    if fault_plan is not None:
        engine.apply_fault_plan(fault_plan)
    if max_wall_s is not None:
        return engine.run(stop_when=stop_when, max_messages=max_messages, max_wall_s=max_wall_s)
    return engine.run(stop_when=stop_when, max_messages=max_messages)


# ---------------------------------------------------------------------------
# Single-shot LA scenarios
# ---------------------------------------------------------------------------


def run_wts_scenario(
    n: int,
    f: int,
    proposals: Mapping[Hashable, LatticeElement] | None = None,
    lattice: JoinSemilattice | None = None,
    byzantine_factories: Sequence[ByzantineFactory] = (),
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 400_000,
    run_to_quiescence: bool = False,
    process_class: type = WTSProcess,
) -> ScenarioResult:
    """Build and run one WTS cluster; stop when all correct processes decided.

    ``process_class`` lets the ablation experiments substitute a deliberately
    weakened WTS variant (see :mod:`repro.core.ablations`) for the correct
    processes while keeping the rest of the scenario identical.
    """
    lattice = lattice if lattice is not None else SetLattice()
    pids, correct, byz = _split_members(n, byzantine_factories)
    if proposals is None:
        proposals = default_proposals(lattice, correct)  # type: ignore[arg-type]
    engine = _build_engine(delay_model, seed, scheduler, backend, pids, f)
    nodes: dict[Hashable, ProtocolCore] = {}
    for pid in correct:
        nodes[pid] = engine.add_core(
            process_class(pid, lattice, pids, f, proposal=proposals.get(pid, lattice.bottom()))
        )
    for factory, pid in zip(byzantine_factories, byz, strict=True):
        nodes[pid] = engine.add_core(factory(pid, lattice, pids, f))

    def all_decided() -> bool:
        return all(getattr(nodes[pid], "has_decided", False) for pid in correct)

    stop = None if run_to_quiescence else all_decided
    run = _run(engine, stop, max_messages, _resolve_fault_plan(fault_plan, pids, correct))
    return ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(correct),
        byzantine_pids=list(byz),
        lattice=lattice,
        f=f,
        run=run,
    )


def run_sbs_scenario(
    n: int,
    f: int,
    proposals: Mapping[Hashable, LatticeElement] | None = None,
    lattice: JoinSemilattice | None = None,
    byzantine_factories: Sequence[ByzantineFactory] = (),
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 400_000,
    registry_seed: int = 1234,
    registry: KeyRegistry | None = None,
    max_wall_s: float | None = None,
    **engine_kwargs: Any,
) -> ScenarioResult:
    """Build and run one SbS cluster (signature-based single-shot LA).

    ``registry`` substitutes the shared PKI (e.g. the explorer's
    :class:`~repro.core.ablations.BlindKeyRegistry` no-verification
    ablation); extra keyword arguments go to the backend constructor (the
    async backend's ``transport=`` / ``framing=`` / ``wire_faults=``).
    """
    lattice = lattice if lattice is not None else SetLattice()
    pids, correct, byz = _split_members(n, byzantine_factories)
    if proposals is None:
        proposals = default_proposals(lattice, correct)  # type: ignore[arg-type]
    if registry is None:
        registry = KeyRegistry(seed=registry_seed)
    engine = _build_engine(delay_model, seed, scheduler, backend, pids, f, **engine_kwargs)
    nodes: dict[Hashable, ProtocolCore] = {}
    for pid in correct:
        nodes[pid] = engine.add_core(
            SbSProcess(
                pid,
                lattice,
                pids,
                f,
                registry=registry,
                proposal=proposals.get(pid, lattice.bottom()),
            )
        )
    for factory, pid in zip(byzantine_factories, byz, strict=True):
        nodes[pid] = engine.add_core(factory(pid, lattice, pids, f, registry=registry))

    def all_decided() -> bool:
        return all(getattr(nodes[pid], "has_decided", False) for pid in correct)

    run = _run(
        engine,
        all_decided,
        max_messages,
        _resolve_fault_plan(fault_plan, pids, correct),
        max_wall_s=max_wall_s,
    )
    result = ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(correct),
        byzantine_pids=list(byz),
        lattice=lattice,
        f=f,
        run=run,
    )
    result.extras["registry"] = registry
    return result


def run_crash_la_scenario(
    n: int,
    f: int,
    proposals: Mapping[Hashable, LatticeElement] | None = None,
    lattice: JoinSemilattice | None = None,
    byzantine_factories: Sequence[ByzantineFactory] = (),
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 400_000,
) -> ScenarioResult:
    """Build and run one crash-fault-baseline LA cluster."""
    lattice = lattice if lattice is not None else SetLattice()
    pids, correct, byz = _split_members(n, byzantine_factories)
    if proposals is None:
        proposals = default_proposals(lattice, correct)  # type: ignore[arg-type]
    engine = _build_engine(delay_model, seed, scheduler, backend, pids, f)
    nodes: dict[Hashable, ProtocolCore] = {}
    for pid in correct:
        nodes[pid] = engine.add_core(
            CrashLAProcess(pid, lattice, pids, f, proposal=proposals.get(pid, lattice.bottom()))
        )
    for factory, pid in zip(byzantine_factories, byz, strict=True):
        nodes[pid] = engine.add_core(factory(pid, lattice, pids, f))

    def all_decided() -> bool:
        return all(getattr(nodes[pid], "has_decided", False) for pid in correct)

    run = _run(engine, all_decided, max_messages, _resolve_fault_plan(fault_plan, pids, correct))
    return ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(correct),
        byzantine_pids=list(byz),
        lattice=lattice,
        f=f,
        run=run,
    )


# ---------------------------------------------------------------------------
# Generalized LA scenarios
# ---------------------------------------------------------------------------


def make_gla_inputs(
    pids: Sequence[Hashable], values_per_process: int
) -> dict[Hashable, list[LatticeElement]]:
    """Distinct singleton inputs per process, ``values_per_process`` each."""
    return {
        pid: [frozenset({f"cmd-{pid}-{k}"}) for k in range(values_per_process)]
        for pid in pids
    }


def run_gwts_scenario(
    n: int,
    f: int,
    values_per_process: int = 2,
    rounds: int = 3,
    inputs: Mapping[Hashable, Sequence[LatticeElement]] | None = None,
    lattice: JoinSemilattice | None = None,
    byzantine_factories: Sequence[ByzantineFactory] = (),
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 1_500_000,
    batch_size: int | None = None,
) -> ScenarioResult:
    """Build and run one GWTS cluster for ``rounds`` rounds.

    Inputs are spread over the first rounds (queued before the run starts);
    the remaining rounds run on empty batches, which gives in-flight values
    time to be included (the finite-prefix analogue of eventual Inclusivity).
    ``batch_size`` caps how many queued values one round's proposal joins
    (``None`` = unbounded, the paper's implicit behaviour).
    """
    lattice = lattice if lattice is not None else SetLattice()
    pids, correct, byz = _split_members(n, byzantine_factories)
    if inputs is None:
        inputs = make_gla_inputs(correct, values_per_process)
    engine = _build_engine(delay_model, seed, scheduler, backend, pids, f)
    nodes: dict[Hashable, ProtocolCore] = {}
    for pid in correct:
        process = GWTSProcess(pid, lattice, pids, f, max_rounds=rounds, batch_size=batch_size)
        for value in inputs.get(pid, []):
            process.new_value(value)
        nodes[pid] = engine.add_core(process)
    for factory, pid in zip(byzantine_factories, byz, strict=True):
        nodes[pid] = engine.add_core(factory(pid, lattice, pids, f))

    def all_halted() -> bool:
        return all(getattr(nodes[pid], "state", None) == "halted" for pid in correct)

    run = _run(engine, all_halted, max_messages, _resolve_fault_plan(fault_plan, pids, correct))
    return ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(correct),
        byzantine_pids=list(byz),
        lattice=lattice,
        f=f,
        run=run,
    )


def run_gsbs_scenario(
    n: int,
    f: int,
    values_per_process: int = 2,
    rounds: int = 3,
    inputs: Mapping[Hashable, Sequence[LatticeElement]] | None = None,
    lattice: JoinSemilattice | None = None,
    byzantine_factories: Sequence[ByzantineFactory] = (),
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 1_500_000,
    registry_seed: int = 1234,
    registry: KeyRegistry | None = None,
    max_wall_s: float | None = None,
    batch_size: int | None = None,
    **engine_kwargs: Any,
) -> ScenarioResult:
    """Build and run one GSbS cluster for ``rounds`` rounds.

    ``registry``/``engine_kwargs`` as in :func:`run_sbs_scenario`;
    ``batch_size`` as in :func:`run_gwts_scenario`.
    """
    lattice = lattice if lattice is not None else SetLattice()
    pids, correct, byz = _split_members(n, byzantine_factories)
    if inputs is None:
        inputs = make_gla_inputs(correct, values_per_process)
    if registry is None:
        registry = KeyRegistry(seed=registry_seed)
    engine = _build_engine(delay_model, seed, scheduler, backend, pids, f, **engine_kwargs)
    nodes: dict[Hashable, ProtocolCore] = {}
    for pid in correct:
        process = GSbSProcess(
            pid, lattice, pids, f, registry=registry, max_rounds=rounds, batch_size=batch_size
        )
        for value in inputs.get(pid, []):
            process.new_value(value)
        nodes[pid] = engine.add_core(process)
    for factory, pid in zip(byzantine_factories, byz, strict=True):
        nodes[pid] = engine.add_core(factory(pid, lattice, pids, f, registry=registry))

    def all_halted() -> bool:
        return all(getattr(nodes[pid], "state", None) == "halted" for pid in correct)

    run = _run(
        engine,
        all_halted,
        max_messages,
        _resolve_fault_plan(fault_plan, pids, correct),
        max_wall_s=max_wall_s,
    )
    result = ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(correct),
        byzantine_pids=list(byz),
        lattice=lattice,
        f=f,
        run=run,
    )
    result.extras["registry"] = registry
    return result


def run_crash_gla_scenario(
    n: int,
    f: int,
    values_per_process: int = 2,
    rounds: int = 3,
    inputs: Mapping[Hashable, Sequence[LatticeElement]] | None = None,
    lattice: JoinSemilattice | None = None,
    byzantine_factories: Sequence[ByzantineFactory] = (),
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 1_500_000,
) -> ScenarioResult:
    """Build and run one crash-fault-baseline GLA cluster for ``rounds`` rounds."""
    lattice = lattice if lattice is not None else SetLattice()
    pids, correct, byz = _split_members(n, byzantine_factories)
    if inputs is None:
        inputs = make_gla_inputs(correct, values_per_process)
    engine = _build_engine(delay_model, seed, scheduler, backend, pids, f)
    nodes: dict[Hashable, ProtocolCore] = {}
    for pid in correct:
        process = CrashGLAProcess(pid, lattice, pids, f, max_rounds=rounds)
        for value in inputs.get(pid, []):
            process.new_value(value)
        nodes[pid] = engine.add_core(process)
    for factory, pid in zip(byzantine_factories, byz, strict=True):
        nodes[pid] = engine.add_core(factory(pid, lattice, pids, f))

    def all_halted() -> bool:
        return all(getattr(nodes[pid], "state", None) == "halted" for pid in correct)

    run = _run(engine, all_halted, max_messages, _resolve_fault_plan(fault_plan, pids, correct))
    return ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(correct),
        byzantine_pids=list(byz),
        lattice=lattice,
        f=f,
        run=run,
    )


# ---------------------------------------------------------------------------
# RSM scenarios
# ---------------------------------------------------------------------------


def run_rsm_scenario(
    n_replicas: int,
    f: int,
    client_scripts: Mapping[Hashable, Sequence[tuple[Any, ...]]],
    byzantine_replica_factories: Sequence[ByzantineFactory] = (),
    byzantine_client_payloads: Mapping[Hashable, Sequence[Any]] | None = None,
    rounds: int = 8,
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 2_000_000,
    client_retry_timeout: float | None = 150.0,
    batch_size: int | None = None,
    client_pipeline: int = 1,
) -> ScenarioResult:
    """Build and run one RSM: ``n_replicas`` replicas plus the given clients.

    ``client_scripts`` maps client ids to sequential operation scripts
    (``("update", payload)`` / ``("read",)``).  Byzantine replicas occupy the
    last membership slots; Byzantine clients (one per entry of
    ``byzantine_client_payloads``) flood inadmissible/under-replicated
    updates as per Lemma 12.  The run stops when every correct client
    finished its script (or the message cap is hit, which tests treat as a
    liveness failure).  ``batch_size`` caps the replicas' per-round proposal
    batches; ``client_pipeline`` lets each client keep that many commutative
    updates in flight at once (reads always barrier).
    """
    lattice = SetLattice()
    replica_pids, correct_replicas, byz_replicas = _split_members(
        n_replicas, byzantine_replica_factories
    )
    engine = _build_engine(delay_model, seed, scheduler, backend, replica_pids, f)
    nodes: dict[Hashable, ProtocolCore] = {}
    for pid in correct_replicas:
        nodes[pid] = engine.add_core(
            Replica(
                pid,
                replica_pids,
                f,
                max_rounds=rounds,
                lattice=lattice,
                batch_size=batch_size,
            )
        )
    for factory, pid in zip(byzantine_replica_factories, byz_replicas, strict=True):
        nodes[pid] = engine.add_core(factory(pid, lattice, replica_pids, f))

    clients: dict[Hashable, RSMClient] = {}
    for client_id, script in client_scripts.items():
        client = RSMClient(
            client_id,
            replica_pids,
            f,
            script=script,
            retry_timeout=client_retry_timeout,
            pipeline=client_pipeline,
        )
        clients[client_id] = client
        nodes[client_id] = engine.add_core(client)

    byz_clients: list[Hashable] = []
    for client_id, payloads in (byzantine_client_payloads or {}).items():
        byz_client = ByzantineClient(client_id, replica_pids, f, payloads=payloads)
        nodes[client_id] = engine.add_core(byz_client)
        byz_clients.append(client_id)

    def all_clients_done() -> bool:
        return all(client.all_completed for client in clients.values())

    run = _run(
        engine,
        all_clients_done,
        max_messages,
        _resolve_fault_plan(fault_plan, replica_pids, correct_replicas),
    )
    result = ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(correct_replicas),
        byzantine_pids=list(byz_replicas) + byz_clients,
        lattice=lattice,
        f=f,
        run=run,
    )
    result.extras["clients"] = clients
    result.extras["replica_pids"] = list(replica_pids)
    result.extras["histories"] = {
        client_id: list(client.history) for client_id, client in clients.items()
    }
    return result


def run_sharded_rsm_scenario(
    n_replicas: int,
    f: int,
    shards: int,
    client_scripts: Mapping[Hashable, Sequence[tuple[Any, ...]]],
    rounds: int = 8,
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    fault_plan: FaultPlanSpec = None,
    backend: str = "kernel",
    max_messages: int = 2_000_000,
    client_retry_timeout: float | None = 150.0,
    batch_size: int | None = None,
    client_pipeline: int = 1,
) -> ScenarioResult:
    """Build and run a *sharded* RSM: ``shards`` independent replica groups.

    The ``n_replicas`` replica pids are split into ``shards`` contiguous
    groups (:func:`repro.rsm.sharding.partition_replicas`), each running its
    own GWTS instance as an independent core-group of the same engine —
    broadcasts stay inside a shard, so the per-round message complexity
    scales with the group size, not the total replica count.  ``f`` is the
    per-shard resilience threshold (every group needs ``>= 3f + 1``
    members).  Clients are :class:`~repro.rsm.sharding.ShardedRSMClient`
    cores: each ``("update", payload)`` hashes to one shard by its routing
    key; each ``("read",)`` fans out to every shard and completes with the
    join of the per-shard confirmed views.
    """
    shard_groups = partition_replicas(member_pids(n_replicas), shards)
    for group in shard_groups:
        if len(group) < 3 * f + 1:
            raise ValueError(
                f"shard group of {len(group)} replicas cannot tolerate f={f} "
                f"(needs >= {3 * f + 1})"
            )
    lattice = SetLattice()
    all_replica_pids = [pid for group in shard_groups for pid in group]
    engine = _build_engine(delay_model, seed, scheduler, backend, all_replica_pids, f)
    nodes: dict[Hashable, ProtocolCore] = {}
    for shard, group in enumerate(shard_groups):
        for pid in group:
            nodes[pid] = engine.add_core(
                Replica(
                    pid,
                    group,
                    f,
                    max_rounds=rounds,
                    lattice=lattice,
                    batch_size=batch_size,
                ),
                group=f"shard{shard}",
            )

    clients: dict[Hashable, ShardedRSMClient] = {}
    for client_id, script in client_scripts.items():
        client = ShardedRSMClient(
            client_id,
            shard_groups,
            f,
            script=script,
            retry_timeout=client_retry_timeout,
            pipeline=client_pipeline,
        )
        clients[client_id] = client
        # Clients never Broadcast, but they get their own group so no
        # shard's reliable-broadcast traffic is addressed to them.
        nodes[client_id] = engine.add_core(client, group="clients")

    def all_clients_done() -> bool:
        return all(client.all_completed for client in clients.values())

    run = _run(
        engine,
        all_clients_done,
        max_messages,
        _resolve_fault_plan(fault_plan, all_replica_pids, all_replica_pids),
    )
    result = ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(all_replica_pids),
        byzantine_pids=[],
        lattice=lattice,
        f=f,
        run=run,
    )
    result.extras["clients"] = clients
    result.extras["shard_groups"] = shard_groups
    result.extras["histories"] = {
        client_id: [
            record
            for inner in client.clients
            for record in inner.history
        ]
        for client_id, client in clients.items()
    }
    # Per-shard histories for the invariant checkers: each shard is an
    # independent RSM instance, so Read Consistency and friends hold *per
    # shard* — reads of different shards are views of disjoint lattices and
    # are legitimately incomparable.
    result.extras["shard_histories"] = {
        shard: {
            client_id: list(client.clients[shard].history)
            for client_id, client in clients.items()
        }
        for shard in range(shards)
    }
    result.extras["cross_shard_reads"] = {
        client_id: list(client.reads) for client_id, client in clients.items()
    }
    return result


# ---------------------------------------------------------------------------
# Open-loop load generation
# ---------------------------------------------------------------------------


@dataclass
class OpenLoopReport:
    """Outcome of one :func:`run_open_loop_scenario` arrival process.

    ``latency`` is the :func:`repro.engine.services.latency_summary` shape
    (``count``/``p50``/``p95``/``p99``/``max``) over per-value decision
    latencies, in the engine's time units — wall-clock seconds on the async
    backend, simulated units on the deterministic ones (``time_source`` says
    which).  A value's latency runs from its scheduled *arrival* to the first
    decision of its proposer that includes it, so queueing delay behind a
    busy cluster is charged to the value — the property that makes open-loop
    tails honest where closed-loop drivers (which stop offering load while
    they wait) understate them.
    """

    #: Values injected (the offered load).
    offered: int
    #: Values that made it into a decision of their proposer.
    decided: int
    #: Arrival interval in engine time units (the fixed rate is 1/interval).
    interval: float
    #: Tail-latency summary of the decided values (``None`` if none decided).
    latency: dict[str, float] | None
    #: ``simulated`` or ``wall-clock`` — the unit of every latency figure.
    time_source: str

    @property
    def all_decided(self) -> bool:
        return self.decided == self.offered


def run_open_loop_scenario(
    n: int,
    f: int,
    values: int = 16,
    interval: float = 5.0,
    rounds: int | None = None,
    lattice: JoinSemilattice | None = None,
    delay_model: DelayModel | None = None,
    seed: int = 0,
    scheduler: SchedulerSpec = None,
    backend: str = "kernel",
    max_messages: int = 1_500_000,
    **engine_kwargs: Any,
) -> ScenarioResult:
    """Drive a GWTS cluster with an open-loop (fixed-rate) arrival process.

    Unlike the closed-loop builders — which queue all inputs up front or wait
    for one operation to finish before issuing the next — this generator
    injects one new value every ``interval`` engine time units *regardless of
    how the cluster is keeping up*, round-robin across the correct proposers.
    The per-value latencies (arrival to first including decision of the
    proposer) land in ``result.extras["open_loop"]`` as an
    :class:`OpenLoopReport`.

    Extra keyword arguments go to the backend constructor (the async
    backend's ``transport=`` / ``time_scale=`` / ``framing=``), so the same
    arrival schedule can be paced over real sockets.
    """
    if values < 1:
        raise ValueError("need at least one value to offer")
    if interval <= 0:
        raise ValueError("the arrival interval must be positive")
    lattice = lattice if lattice is not None else SetLattice()
    pids = member_pids(n)
    if rounds is None:
        # Generous ceiling: every value gets its own round plus settle time.
        rounds = values + 8
    if engine_kwargs:
        if isinstance(scheduler, str):
            scheduler = parse_scheduler(scheduler, pids=pids, f=f)
        if scheduler is not None:
            engine = create_engine(backend, seed=seed, scheduler=scheduler, **engine_kwargs)
        else:
            engine = create_engine(
                backend, delay_model=delay_model or UniformDelay(), seed=seed, **engine_kwargs
            )
    else:
        engine = _build_engine(delay_model, seed, scheduler, backend, pids, f)
    nodes: dict[Hashable, ProtocolCore] = {
        pid: engine.add_core(GWTSProcess(pid, lattice, pids, f, max_rounds=rounds))
        for pid in pids
    }

    arrivals: dict[Any, tuple[Hashable, float]] = {}

    def _arrival(pid: Hashable, value: LatticeElement):
        def arrive(live_engine) -> None:
            core = live_engine.node(pid)
            arrivals[value] = (pid, live_engine.now)
            core.new_value(value)
            core.recheck()
            live_engine._apply_effects(core)

        return arrive

    for index in range(values):
        pid = pids[index % len(pids)]
        value = lattice.lift(f"load-{index}")
        engine.inject(
            _arrival(pid, value), at=(index + 1) * interval, label=f"arrive-{index}"
        )

    def all_halted() -> bool:
        return all(node.state == "halted" for node in nodes.values())

    run = _run(engine, all_halted, max_messages)

    # A value is decided when its proposer's first decision at-or-after the
    # arrival includes it; records are scanned in time order, so the latency
    # is the earliest such decision.
    latencies: list[float] = []
    records = sorted(engine.metrics.decisions, key=lambda record: record.time)
    for value, (pid, arrived_at) in arrivals.items():
        element = lattice.lift(value) if not lattice.is_element(value) else value
        for record in records:
            if (
                record.pid == pid
                and record.time >= arrived_at
                and lattice.leq(element, record.value)
            ):
                latencies.append(record.time - arrived_at)
                break
    report = OpenLoopReport(
        offered=values,
        decided=len(latencies),
        interval=interval,
        latency=latency_summary(latencies),
        time_source=engine.clock.time_source,
    )
    result = ScenarioResult(
        engine=engine,
        nodes=nodes,
        correct_pids=list(pids),
        byzantine_pids=[],
        lattice=lattice,
        f=f,
        run=run,
    )
    result.extras["open_loop"] = report
    return result
