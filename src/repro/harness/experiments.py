"""Per-table/figure experiment runners (E1–E10 of DESIGN.md, plus E11–E12).

Each function runs the relevant simulated scenarios and returns a dictionary
with a uniform shape the orchestrator (:mod:`repro.orchestrator`) persists:

* ``expected`` — the paper's analytical claim, for side-by-side reading;
* ``ok`` — the experiment's verdict: did the run match the claim;
* ``headline`` — the numeric metrics worth tracking across runs;
* ``latency`` — simulated-time latency metrics; deterministic given the
  seeds, so baseline comparison can flag regressions without wall-clock
  noise;
* ``headers``/``rows`` — the structured data of the report table;
* ``table`` — the text rendering of ``headers``/``rows`` (presentation
  only; everything the table shows is also available as data).

The functions accept ``quick=True`` to shrink sweep ranges; the benchmark
harness and the CI sweep use the quick settings so a full run stays in the
minutes range, while the defaults give smoother curves.
"""

from __future__ import annotations
from collections.abc import Callable, Hashable, Sequence

from typing import Any

from repro.baselines.restricted_spec import (
    check_restricted_la_run,
    power_set_breadth,
    restricted_spec_feasible,
)
from repro.byzantine.behaviors import (
    AlwaysAckAcceptor,
    EquivocatingProposer,
    FastForwardGWTS,
    FlipFloppingAcceptor,
    NackSpamAcceptor,
    SilentByzantine,
    ValueInjectorProposer,
)
from repro.core.quorum import max_faults, required_processes
from repro.engine.backends import backend_is_wall_clock
from repro.engine.delays import FixedDelay, SkewedPairDelay, UniformDelay
from repro.explore.invariants import la_invariants
from repro.harness.workloads import (
    member_pids,
    run_crash_gla_scenario,
    run_crash_la_scenario,
    run_gwts_scenario,
    run_rsm_scenario,
    run_sbs_scenario,
    run_sharded_rsm_scenario,
    run_wts_scenario,
)
from repro.lattice.chain import all_comparable, hasse_diagram_text, sort_chain
from repro.lattice.set_lattice import SetLattice
from repro.metrics.report import fit_polynomial_order, format_table
from repro.rsm.checker import check_rsm_history, collect_admissible_commands
from repro.rsm.crdt import GCounterObject, GSetObject
from repro.sim.axes import parse_fault_plan, parse_scheduler
from repro.sim.faults import FaultPlan
from repro.sim.scheduler import WorstCaseScheduler

#: Reason recorded when a delay-model bound check is skipped.  The paper's
#: latency bounds count *message delays* (simulated-time units with a unit
#: delay model); a wall-clock backend reports real elapsed seconds, so the
#: numeric bound is meaningless there.  Safety/agreement properties are
#: schedule-independent and are still judged.
_WALL_CLOCK_SKIP = "delay-model bound skipped: backend reports wall-clock seconds, not message delays"


def wall_latency_of(*scenarios) -> dict[str, float] | None:
    """Pool the wall-clock decision-latency summaries of *scenarios*.

    Deterministic backends leave ``RunResult.decision_latency`` as ``None``
    (their clock is simulated, and E3/E5-style bounds already count message
    delays exactly), so this returns ``None`` for them and the outcome's
    ``wall_latency`` field stays empty.  A single wall-clock run contributes
    its summary verbatim.  Multiple runs are pooled conservatively: exact
    percentiles cannot be merged without the raw samples, so the pooled
    ``p50/p95/p99/max`` are the *worst* of the per-run values (an upper
    bound on the true pooled percentile) and ``count`` sums the samples.
    """
    summaries = [
        scenario.run.decision_latency
        for scenario in scenarios
        if scenario is not None and scenario.run.decision_latency
    ]
    if not summaries:
        return None
    if len(summaries) == 1:
        return dict(summaries[0])
    return {
        "count": float(sum(s["count"] for s in summaries)),
        "p50": max(s["p50"] for s in summaries),
        "p95": max(s["p95"] for s in summaries),
        "p99": max(s["p99"] for s in summaries),
        "max": max(s["max"] for s in summaries),
    }


# ---------------------------------------------------------------------------
# E1 — Figure 1: decisions form a chain in the power-set lattice
# ---------------------------------------------------------------------------


def run_chain_experiment(
    n: int = 4,
    f: int = 1,
    seed: int = 11,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Reproduce Figure 1: the decisions of a WTS run form a chain."""
    lattice = SetLattice()
    scenario = run_wts_scenario(
        n=n,
        f=f,
        seed=seed,
        lattice=lattice,
        scheduler=scheduler,
        fault_plan=fault_plan,
        backend=backend,
    )
    decisions = [decs[0] for decs in scenario.decisions().values() if decs]
    chain = sort_chain(lattice, decisions) if all_comparable(lattice, decisions) else []
    elements = list(dict.fromkeys(list(scenario.proposals().values()) + decisions))
    diagram = hasse_diagram_text(lattice, elements, highlight_chain=chain)
    rows = [
        (pid, _render(decs[0]) if decs else "-")
        for pid, decs in sorted(scenario.decisions().items())
    ]
    headers = ["process", "decision"]
    is_chain = all_comparable(lattice, decisions)
    check = scenario.check_la()
    return {
        "experiment": "E1",
        "expected": "all decisions pairwise comparable (a chain in the Figure 1 lattice)",
        "decisions": decisions,
        "chain": chain,
        "is_chain": is_chain,
        "hasse": diagram,
        "headers": headers,
        "rows": rows,
        "table": format_table(headers, rows, title="E1: decisions per process"),
        "check": check,
        "ok": bool(is_chain and check.ok),
        "headline": {"decided": float(len(decisions))},
        "wall_latency": wall_latency_of(scenario),
        "latency": {},
    }


# ---------------------------------------------------------------------------
# E2 — Theorem 1: necessity of 3f + 1 processes
# ---------------------------------------------------------------------------


def run_resilience_experiment(
    f: int = 1,
    seed: int = 7,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Theorem 1: with ``n = 3f`` no algorithm is both safe and live.

    Three configurations make the impossibility concrete:

    1. **WTS at n = 3f with f silent Byzantines** — the Byzantine ack quorum
       ``floor((n+f)/2)+1 = 2f+1`` exceeds the ``2f`` correct processes, so
       WTS (which never compromises safety) loses liveness: nobody decides.
    2. **Majority-quorum LA at n = 3f with the Theorem 1 schedule** — the
       crash baseline (quorum ``floor(n/2)+1 <= 2f``) stays live, but the
       always-acking Byzantine plus delayed links between the two correct
       halves lets both halves commit incomparable values: safety is lost.
    3. **WTS at n = 3f + 1 with the same adversary and schedule** — both
       safety and liveness hold.
    """
    lattice = SetLattice()
    outcomes: list[dict[str, Any]] = []

    # (1) WTS at n = 3f, silent Byzantines: liveness lost, safety kept.
    n_small = 3 * f
    silent = [lambda pid, lat, members, ff: SilentByzantine(pid) for _ in range(f)]
    wts_small = run_wts_scenario(
        n=n_small,
        f=f,
        seed=seed,
        lattice=lattice,
        byzantine_factories=silent,
        delay_model=FixedDelay(1.0),
        scheduler=scheduler,
        fault_plan=fault_plan,
        backend=backend,
        max_messages=20_000,
        run_to_quiescence=True,
    )
    check_small = wts_small.check_la(require_liveness=False)
    decided_small = sum(1 for decs in wts_small.decisions().values() if decs)
    outcomes.append(
        {
            "config": f"WTS, n={n_small} (=3f), silent Byzantines",
            "n": n_small,
            "live": decided_small == len(wts_small.correct_pids),
            "decided": decided_small,
            "correct": len(wts_small.correct_pids),
            "safety_ok": check_small.ok,
        }
    )

    # (2) Majority-quorum baseline at n = 3f with the Theorem 1 schedule.
    pids = member_pids(n_small)
    correct = pids[: n_small - f]
    half = max(1, len(correct) // 2)
    slow_pairs = [(a, b) for a in correct[:half] for b in correct[half:]]
    partition = SkewedPairDelay(slow_pairs, base=FixedDelay(1.0), slow_delay=10_000.0)
    always_ack = [
        lambda pid, lat, members, ff: AlwaysAckAcceptor(pid, lat, members, ff)
        for _ in range(f)
    ]
    crash_small = run_crash_la_scenario(
        n=n_small,
        f=f,
        seed=seed,
        lattice=lattice,
        byzantine_factories=always_ack,
        delay_model=partition,
        scheduler=scheduler,
        fault_plan=fault_plan,
        backend=backend,
        max_messages=20_000,
    )
    check_crash = crash_small.check_la(require_liveness=False)
    decided_crash = sum(1 for decs in crash_small.decisions().values() if decs)
    outcomes.append(
        {
            "config": f"majority-quorum LA, n={n_small} (=3f), always-ack Byzantine + partition",
            "n": n_small,
            "live": decided_crash == len(crash_small.correct_pids),
            "decided": decided_crash,
            "correct": len(crash_small.correct_pids),
            "safety_ok": check_crash.ok,
        }
    )

    # (3) WTS at n = 3f + 1 with the same adversary and schedule.
    n_big = 3 * f + 1
    pids_big = member_pids(n_big)
    correct_big = pids_big[: n_big - f]
    half_big = max(1, len(correct_big) // 2)
    slow_big = [(a, b) for a in correct_big[:half_big] for b in correct_big[half_big:]]
    partition_big = SkewedPairDelay(slow_big, base=FixedDelay(1.0), slow_delay=50.0)
    wts_big = run_wts_scenario(
        n=n_big,
        f=f,
        seed=seed,
        lattice=lattice,
        byzantine_factories=always_ack,
        delay_model=partition_big,
        scheduler=scheduler,
        fault_plan=fault_plan,
        backend=backend,
        max_messages=60_000,
    )
    check_big = wts_big.check_la()
    decided_big = sum(1 for decs in wts_big.decisions().values() if decs)
    outcomes.append(
        {
            "config": f"WTS, n={n_big} (=3f+1), same adversary",
            "n": n_big,
            "live": decided_big == len(wts_big.correct_pids),
            "decided": decided_big,
            "correct": len(wts_big.correct_pids),
            "safety_ok": check_big.ok,
        }
    )

    rows = [
        (
            o["config"],
            f"{o['decided']}/{o['correct']}",
            "live" if o["live"] else "BLOCKED",
            "OK" if o["safety_ok"] else "VIOLATED",
        )
        for o in outcomes
    ]
    headers = ["configuration", "decided", "liveness", "safety"]
    wts_small_o, crash_small_o, wts_big_o = outcomes
    ok = (
        wts_small_o["safety_ok"]
        and not wts_small_o["live"]
        and crash_small_o["live"]
        and not crash_small_o["safety_ok"]
        and wts_big_o["safety_ok"]
        and wts_big_o["live"]
    )
    return {
        "experiment": "E2",
        "expected": "n=3f: liveness lost (Byzantine quorum) or safety lost (majority quorum); n=3f+1: both hold",
        "outcomes": outcomes,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E2: necessity of 3f+1 processes (Theorem 1)",
        ),
        "ok": bool(ok),
        "headline": {
            "decided_wts_3f": float(wts_small_o["decided"]),
            "decided_crash_3f": float(crash_small_o["decided"]),
            "decided_wts_3f1": float(wts_big_o["decided"]),
        },
        "wall_latency": wall_latency_of(wts_small, crash_small, wts_big),
        "latency": {},
    }


# ---------------------------------------------------------------------------
# E3 — Theorem 3: WTS decides within 2f + 5 message delays
# ---------------------------------------------------------------------------


def run_wts_latency_experiment(
    max_f: int = 3,
    seed: int = 3,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Measure WTS decision latency (in message delays) as f grows.

    Run with a fixed unit delay so simulated time counts message delays
    exactly; the Byzantine population mixes silent and flip-flopping
    acceptors to exercise the nack/refinement path.
    """
    top = 2 if quick else max_f
    wall_clock = backend_is_wall_clock(backend)
    rows: list[Sequence[Any]] = []
    series: dict[int, float] = {}
    checks = []
    measured: list = []
    for f in range(0, top + 1):
        n = required_processes(f)
        byz = []
        for index in range(f):
            if index % 2 == 0:
                byz.append(lambda pid, lat, members, ff: FlipFloppingAcceptor(pid, lat, members, ff))
            else:
                byz.append(lambda pid, lat, members, ff: SilentByzantine(pid))
        scenario = run_wts_scenario(
            n=n,
            f=f,
            seed=seed + f,
            byzantine_factories=byz,
            delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
        )
        checks.append(scenario.check_la())
        measured.append(scenario)
        latest_decision_time = max(
            (record.time for record in scenario.metrics.decisions), default=0.0
        )
        bound = 2 * f + 5
        series[f] = latest_decision_time
        if wall_clock:
            verdict = "skipped (wall-clock)"
        else:
            verdict = "OK" if latest_decision_time <= bound else "EXCEEDED"
        rows.append((f, n, f"{latest_decision_time:.0f}", bound, verdict))
    if wall_clock:
        # The bound counts message delays; wall-clock seconds cannot be
        # compared against it.  The LA properties still judge the runs.
        ok = all(check.ok for check in checks)
    else:
        ok = all(measured <= 2 * f + 5 for f, measured in series.items())
    headers = ["f", "n", "measured delays", "bound 2f+5", "within bound"]
    return {
        "experiment": "E3",
        "expected": "decision within 2f + 5 message delays",
        "series": series,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E3: WTS decision latency",
        ),
        "ok": bool(ok),
        "skipped_checks": [_WALL_CLOCK_SKIP] if wall_clock else [],
        "headline": {"f_max": float(top)},
        "wall_latency": wall_latency_of(*measured),
        "latency": {"max_message_delays": max(series.values(), default=0.0)},
    }


# ---------------------------------------------------------------------------
# E4 — Section 5.1.3: WTS message complexity O(n^2) per process
# ---------------------------------------------------------------------------


def run_wts_messages_experiment(
    sizes: Sequence[int] | None = None, seed: int = 5,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Measure WTS per-process message counts over a sweep of n."""
    if sizes is None:
        sizes = (4, 7, 10, 13) if quick else (4, 7, 10, 13, 16, 19)
    series: dict[int, float] = {}
    rows: list[Sequence[Any]] = []
    measured: list = []
    for n in sizes:
        f = max_faults(n)
        scenario = run_wts_scenario(
            n=n, f=f, seed=seed + n, delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
        )
        measured.append(scenario)
        per_process = scenario.metrics.mean_messages_per_process(scenario.correct_pids)
        series[n] = per_process
        rows.append((n, f, f"{per_process:.1f}", f"{per_process / (n * n):.2f}"))
    order = fit_polynomial_order(list(series.keys()), list(series.values()))
    headers = ["n", "f", "msgs/process", "msgs / n^2"]
    return {
        "experiment": "E4",
        "expected": "messages per process grow quadratically in n (reliable broadcast dominates)",
        "series": series,
        "fit_order": order,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title=f"E4: WTS message complexity (log-log slope ~ {order:.2f})",
        ),
        "ok": 1.5 <= order <= 3.0,
        "headline": {
            "fit_order": order,
            "max_msgs_per_process": max(series.values(), default=0.0),
        },
        "wall_latency": wall_latency_of(*measured),
        "latency": {},
    }


# ---------------------------------------------------------------------------
# E5 — Theorem 8 / Section 8.1: SbS latency 5 + 4f and O(n) messages
# ---------------------------------------------------------------------------


def run_sbs_experiment(
    sizes: Sequence[int] | None = None, seed: int = 9,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """SbS: latency bound 5 + 4f and per-process message counts linear in n (f fixed)."""
    if sizes is None:
        sizes = (4, 7, 10, 13) if quick else (4, 7, 10, 13, 16, 19)
    f_fixed = 1
    wall_clock = backend_is_wall_clock(backend)
    series_msgs: dict[int, float] = {}
    rows: list[Sequence[Any]] = []
    measured: list = []
    for n in sizes:
        scenario = run_sbs_scenario(
            n=n, f=f_fixed, seed=seed + n, delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
        )
        measured.append(scenario)
        per_process = scenario.metrics.mean_messages_per_process(scenario.correct_pids)
        latest = max((r.time for r in scenario.metrics.decisions), default=0.0)
        bound = 5 + 4 * f_fixed
        series_msgs[n] = per_process
        rows.append(
            (n, f_fixed, f"{per_process:.1f}", f"{per_process / n:.2f}", f"{latest:.0f}", bound)
        )
    order = fit_polynomial_order(list(series_msgs.keys()), list(series_msgs.values()))
    # Latency sweep over f at n = 3f + 1.
    latency_rows: list[Sequence[Any]] = []
    latency_series: dict[int, float] = {}
    for f in range(0, 2 if quick else 3):
        n = required_processes(f)
        scenario = run_sbs_scenario(
            n=n, f=f, seed=seed + 100 + f, delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
        )
        measured.append(scenario)
        latest = max((r.time for r in scenario.metrics.decisions), default=0.0)
        latency_series[f] = latest
        latency_rows.append((f, n, f"{latest:.0f}", 5 + 4 * f))
    headers = ["n", "f", "msgs/process", "msgs / n", "delays", "bound 5+4f"]
    latency_headers = ["f", "n", "delays", "bound 5+4f"]
    # Message complexity is schedule-reproducible on every backend; the
    # latency bound counts message delays and is skipped on wall-clock time.
    latency_ok = wall_clock or all(
        latest <= 5 + 4 * f for f, latest in latency_series.items()
    )
    return {
        "experiment": "E5",
        "expected": "messages per process linear in n for f=O(1); latency <= 5 + 4f",
        "series": series_msgs,
        "latency_series": latency_series,
        "fit_order": order,
        "headers": headers,
        "rows": rows,
        "latency_headers": latency_headers,
        "latency_rows": latency_rows,
        "table": format_table(
            headers,
            rows,
            title=f"E5: SbS message complexity (log-log slope ~ {order:.2f})",
        )
        + "\n\n"
        + format_table(latency_headers, latency_rows, title="E5b: SbS latency vs f"),
        "ok": bool(0.7 <= order <= 1.5 and latency_ok),
        "skipped_checks": [_WALL_CLOCK_SKIP] if wall_clock else [],
        "headline": {
            "fit_order": order,
            "max_msgs_per_process": max(series_msgs.values(), default=0.0),
        },
        "wall_latency": wall_latency_of(*measured),
        "latency": {"max_delays": max(latency_series.values(), default=0.0)},
    }


# ---------------------------------------------------------------------------
# E6 — Section 6.4: GWTS messages per proposer per decision O(f n^2)
# ---------------------------------------------------------------------------


def run_gwts_messages_experiment(
    sizes: Sequence[int] | None = None,
    rounds: int = 3,
    seed: int = 13,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Measure GWTS per-proposer per-decision message counts over n."""
    if sizes is None:
        sizes = (4, 7) if quick else (4, 7, 10, 13)
    series: dict[int, float] = {}
    rows: list[Sequence[Any]] = []
    measured: list = []
    for n in sizes:
        f = max_faults(n)
        scenario = run_gwts_scenario(
            n=n, f=f, values_per_process=1, rounds=rounds, seed=seed + n,
            delay_model=FixedDelay(1.0), scheduler=scheduler, fault_plan=fault_plan, backend=backend,
        )
        measured.append(scenario)
        decisions = sum(len(d) for d in scenario.decisions().values())
        per_process = scenario.metrics.mean_messages_per_process(scenario.correct_pids)
        per_decision = per_process / max(1, decisions / max(1, len(scenario.correct_pids)))
        series[n] = per_decision
        rows.append((n, f, rounds, f"{per_process:.1f}", f"{per_decision:.1f}",
                     f"{per_decision / (max(1, f) * n * n):.2f}"))
    order = fit_polynomial_order(list(series.keys()), list(series.values()))
    headers = ["n", "f", "rounds", "msgs/process", "msgs/process/decision", "ratio to f*n^2"]
    return {
        "experiment": "E6",
        "expected": "messages per proposer per decision bounded by c * f * n^2",
        "series": series,
        "fit_order": order,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title=f"E6: GWTS per-decision message complexity (log-log slope ~ {order:.2f})",
        ),
        # With f growing as (n-1)/3 in the sweep, O(f n^2) behaves like n^3.
        "ok": 1.8 <= order <= 3.6,
        "headline": {
            "fit_order": order,
            "max_msgs_per_decision": max(series.values(), default=0.0),
        },
        "wall_latency": wall_latency_of(*measured),
        "latency": {},
    }


# ---------------------------------------------------------------------------
# E7 — Section 6.2/6.3: GWTS liveness & inclusivity under round-clogging
# ---------------------------------------------------------------------------


def run_gwts_liveness_experiment(
    f: int = 1, rounds: int = 5, seed: int = 17,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """GWTS under the fast-forward (round-clogging) and nack-spam adversaries."""
    n = required_processes(f)
    byz = [
        (
            lambda pid, lat, members, ff: FastForwardGWTS(
                pid,
                lat,
                members,
                rounds_ahead=rounds + 3,
                values=[frozenset({f"byz-ff-{pid}-{k}"}) for k in range(3)],
            )
        )
        for _ in range(f)
    ]
    scenario = run_gwts_scenario(
        n=n,
        f=f,
        values_per_process=2,
        rounds=rounds,
        seed=seed,
        byzantine_factories=byz,
        scheduler=scheduler,
        fault_plan=fault_plan,
        backend=backend,
    )
    check = scenario.check_gla()
    decisions = scenario.decisions()
    rows = [
        (pid, len(decs), _render(decs[-1]) if decs else "-")
        for pid, decs in sorted(decisions.items())
    ]
    counts = {pid: len(d) for pid, d in decisions.items()}
    headers = ["process", "#decisions", "final decision"]
    return {
        "experiment": "E7",
        "expected": "every correct process keeps deciding; every submitted value is eventually included",
        "check": check,
        "decisions_per_process": counts,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E7: GWTS liveness under round-clogging adversary",
        ),
        "ok": bool(check.ok and counts and all(count >= 1 for count in counts.values())),
        "headline": {"total_decisions": float(sum(counts.values()))},
        "wall_latency": wall_latency_of(scenario),
        "latency": {},
    }


# ---------------------------------------------------------------------------
# E8 — Section 7: RSM linearizability, wait-freedom, Byzantine clients
# ---------------------------------------------------------------------------


def run_rsm_experiment(
    f: int = 1, clients: int = 3, updates_per_client: int = 2, seed: int = 19,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Run the replicated set/counter RSM with Byzantine replicas and clients."""
    n = required_processes(f)
    counter = GCounterObject("hits")
    gset = GSetObject("tags")
    scripts: dict[Hashable, list] = {}
    for index in range(clients):
        client_id = f"client{index}"
        script: list = []
        for k in range(updates_per_client):
            if index % 2 == 0:
                script.append(("update", counter.op_inc(1)))
            else:
                script.append(("update", gset.op_add(f"tag-{index}-{k}")))
        script.append(("read",))
        scripts[client_id] = script
    byz_replicas = [lambda pid, lat, members, ff: SilentByzantine(pid) for _ in range(f)]
    scenario = run_rsm_scenario(
        n_replicas=n,
        f=f,
        client_scripts=scripts,
        byzantine_replica_factories=byz_replicas,
        byzantine_client_payloads={"badclient": ["junk-0", "junk-1"]},
        rounds=6 if quick else 10,
        seed=seed,
        scheduler=scheduler,
        fault_plan=fault_plan,
        backend=backend,
    )
    histories = scenario.extras["histories"].values()
    admissible = collect_admissible_commands(
        (scenario.nodes[pid] for pid in scenario.correct_pids), histories
    )
    check = check_rsm_history(histories, admissible_commands=admissible)
    reads = [
        record
        for history in scenario.extras["histories"].values()
        for record in history
        if record.kind == "read" and record.result is not None
    ]
    counter_values = [counter.value(read.result) for read in reads]
    read_latencies = [read.end_time - read.start_time for read in reads]
    rows = [
        (read.client, f"{read.end_time - read.start_time:.1f}", counter.value(read.result),
         len(gset.value(read.result)))
        for read in reads
    ]
    headers = ["client", "read latency", "counter value", "|tag set|"]
    return {
        "experiment": "E8",
        "expected": "all operations complete; reads are comparable, monotonic and reflect completed updates",
        "check": check,
        "counter_values": counter_values,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E8: RSM reads (counter + grow-only set objects)",
        ),
        "ok": bool(check.ok and counter_values and max(counter_values) >= 1),
        "headline": {"reads": float(len(reads)), "max_counter": float(max(counter_values, default=0))},
        "wall_latency": wall_latency_of(scenario),
        "latency": {
            "mean_read_latency": sum(read_latencies) / len(read_latencies) if read_latencies else 0.0
        },
    }


# ---------------------------------------------------------------------------
# E9 — Section 2: breadth argument against the restrictive specification
# ---------------------------------------------------------------------------


def run_breadth_experiment(
    n: int = 4, f: int = 1, breadths: Sequence[int] | None = None, seed: int = 23,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Contrast this paper's specification with the restrictive one as breadth grows."""
    if breadths is None:
        breadths = (2, 3, 4, 6, 8)
    rows: list[Sequence[Any]] = []
    outcomes: list[dict[str, Any]] = []
    measured: list = []
    # Run WTS with one Byzantine value injector; our spec must hold, and the
    # decisions typically include the Byzantine value, which the restrictive
    # spec forbids.
    byz_value = frozenset({"byz-injected"})
    byz = [
        lambda pid, lat, members, ff: ValueInjectorProposer(
            pid, lat, members, ff, proposal=byz_value
        )
    ]
    for k in breadths:
        feasible = restricted_spec_feasible(n, power_set_breadth(k))
        universe = {f"u{i}" for i in range(k)} | {"byz-injected"}
        lattice = SetLattice(universe=universe)
        pids = member_pids(n)
        correct = pids[: n - 1]
        proposals = {
            pid: frozenset({f"u{i % k}"}) for i, pid in enumerate(correct)
        }
        scenario = run_wts_scenario(
            n=n,
            f=f,
            seed=seed + k,
            lattice=lattice,
            proposals=proposals,
            byzantine_factories=byz,
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
        )
        measured.append(scenario)
        ours = scenario.check_la()
        restricted = check_restricted_la_run(
            lattice,
            scenario.proposals(),
            scenario.decisions(),
            byzantine_values=[byz_value],
            f=f,
        )
        outcomes.append(
            {
                "breadth": k,
                "restricted_feasible": feasible,
                "our_spec_ok": ours.ok,
                "restricted_ok": restricted.ok,
            }
        )
        rows.append(
            (
                k,
                n,
                "yes" if feasible else f"no (needs >= {k + 1} procs)",
                "OK" if ours.ok else "VIOLATED",
                "OK" if restricted.ok else "violated (Byzantine value decided)",
            )
        )
    headers = ["breadth k", "n", "restrictive spec feasible", "our spec", "restrictive spec on same run"]
    ok = all(o["our_spec_ok"] for o in outcomes) and all(
        not o["restricted_feasible"] for o in outcomes if o["breadth"] >= n
    )
    return {
        "experiment": "E9",
        "expected": "our spec holds for every breadth; the restrictive spec is infeasible once breadth >= n and is violated whenever a Byzantine value is decided",
        "outcomes": outcomes,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E9: lattice breadth vs specifications",
        ),
        "ok": bool(ok),
        "headline": {
            "breadths": float(len(outcomes)),
            "restricted_infeasible": float(sum(1 for o in outcomes if not o["restricted_feasible"])),
        },
        "wall_latency": wall_latency_of(*measured),
        "latency": {},
    }


# ---------------------------------------------------------------------------
# E10 — Byzantine tolerance overhead vs the crash-fault baseline
# ---------------------------------------------------------------------------


def run_baseline_comparison(
    sizes: Sequence[int] | None = None, seed: int = 29,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Message/latency overhead of WTS and GWTS over the crash-fault baseline."""
    if sizes is None:
        sizes = (4, 7) if quick else (4, 7, 10, 13)
    rows: list[Sequence[Any]] = []
    wts_series: dict[int, float] = {}
    crash_series: dict[int, float] = {}
    max_wts_time = 0.0
    measured: list = []
    for n in sizes:
        f = max_faults(n)
        wts = run_wts_scenario(
            n=n, f=f, seed=seed + n, delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
        )
        crash = run_crash_la_scenario(
            n=n, f=f, seed=seed + n, delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
        )
        measured.extend((wts, crash))
        wts_msgs = wts.metrics.mean_messages_per_process(wts.correct_pids)
        crash_msgs = crash.metrics.mean_messages_per_process(crash.correct_pids)
        wts_time = max((r.time for r in wts.metrics.decisions), default=0.0)
        crash_time = max((r.time for r in crash.metrics.decisions), default=0.0)
        wts_series[n] = wts_msgs
        crash_series[n] = crash_msgs
        max_wts_time = max(max_wts_time, wts_time)
        rows.append(
            (
                n,
                f,
                f"{crash_msgs:.1f}",
                f"{wts_msgs:.1f}",
                f"{wts_msgs / max(crash_msgs, 1e-9):.1f}x",
                f"{crash_time:.0f}",
                f"{wts_time:.0f}",
            )
        )
    headers = ["n", "f", "crash msgs/proc", "WTS msgs/proc", "overhead", "crash delays", "WTS delays"]
    return {
        "experiment": "E10",
        "expected": "WTS costs a quadratic (vs linear) message term and never fewer delays than the crash baseline",
        "wts_series": wts_series,
        "crash_series": crash_series,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E10: Byzantine tolerance overhead vs crash-fault baseline",
        ),
        "ok": all(wts_series[n] > crash_series[n] for n in wts_series),
        "headline": {
            "max_overhead": max(
                (wts_series[n] / max(crash_series[n], 1e-9) for n in wts_series), default=0.0
            ),
        },
        "wall_latency": wall_latency_of(*measured),
        "latency": {"max_wts_delays": max_wts_time},
    }


# ---------------------------------------------------------------------------
# E11 (extension) — ablation study of the two WTS design choices
# ---------------------------------------------------------------------------


def run_ablation_experiment(
    seed: int = 31,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """Ablation study: remove one WTS defence and run the attack it blocks.

    Three configurations, each compared against intact WTS under the same
    adversary, seed and delays:

    * **A1 — no wait-till-safe** vs a nack-spamming acceptor: undisclosed junk
      values reach decisions (Non-Triviality broken);
    * **A2 — plain disclosure broadcast** vs an equivocating proposer: the
      correct processes' safe sets diverge and the deciding phase wedges
      (Liveness broken within the run horizon);
    * **A3 — both removed** vs the same equivocator: the single Byzantine
      process gets *two* distinct values into decisions, breaking the
      ``|B| <= f`` bound of Non-Triviality that Observation 1 (one safe value
      per process) is there to enforce.
    """
    from repro.core.ablations import (
        NoDefencesWTSProcess,
        NoSafetyWTSProcess,
        PlainDisclosureWTSProcess,
    )

    def nack_spammer(pid, lat, members, ff):
        return NackSpamAcceptor(pid, lat, members, ff)

    def equivocator(pid, lat, members, ff):
        return EquivocatingProposer(
            pid, lat, members, ff,
            value_a=frozenset({"eq-a"}), value_b=frozenset({"eq-b"}),
        )

    def broke_invariant(name):
        """Judge via the shared invariant library (repro.explore.invariants)."""

        def judge(scenario):
            return name in la_invariants(scenario)

        return judge

    configs = [
        ("A1 no wait-till-safe", NoSafetyWTSProcess, nack_spammer,
         "non_triviality", broke_invariant("non_triviality")),
        ("A2 plain disclosure", PlainDisclosureWTSProcess, equivocator,
         "liveness", broke_invariant("liveness")),
        ("A3 both removed", NoDefencesWTSProcess, equivocator,
         "|B| <= f (one value per Byzantine)", broke_invariant("byzantine_value_bound")),
    ]
    rows: list[Sequence[Any]] = []
    outcomes: list[dict[str, Any]] = []
    measured: list = []
    for name, ablated_class, adversary, expected_break, judge in configs:
        intact_ok = True
        ablated_broken = False
        broken_seed = None
        # The attack's success can depend on the schedule; scan a few seeds
        # and report whether any schedule breaks the ablated variant while
        # the intact algorithm survives all of them.
        for offset in range(4 if quick else 8):
            run_seed = seed + offset
            intact = run_wts_scenario(
                n=4, f=1, seed=run_seed, byzantine_factories=[adversary],
                delay_model=UniformDelay(0.5, 2.0), max_messages=30_000,
                scheduler=scheduler,
                fault_plan=fault_plan,
                backend=backend,
            )
            ablated = run_wts_scenario(
                n=4, f=1, seed=run_seed, byzantine_factories=[adversary],
                delay_model=UniformDelay(0.5, 2.0), max_messages=30_000,
                scheduler=scheduler,
                fault_plan=fault_plan,
                backend=backend,
                process_class=ablated_class, run_to_quiescence=True,
            )
            measured.extend((intact, ablated))
            intact_ok = intact_ok and intact.check_la().ok
            if not ablated_broken and judge(ablated):
                ablated_broken = True
                broken_seed = run_seed
        outcomes.append(
            {
                "ablation": name,
                "expected_break": expected_break,
                "intact_ok": bool(intact_ok),
                "ablated_broken": bool(ablated_broken),
                "witness_seed": broken_seed,
            }
        )
        rows.append(
            (
                name,
                expected_break,
                "holds" if intact_ok else "VIOLATED",
                "broken (as expected)" if ablated_broken else "not broken in scanned seeds",
            )
        )
    headers = ["ablation", "targeted property", "intact WTS", "ablated WTS"]
    return {
        "experiment": "E11",
        "expected": "each removed defence lets its targeted attack break exactly the property the paper claims it protects",
        "outcomes": outcomes,
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E11: ablation of WTS design choices",
        ),
        "ok": all(o["intact_ok"] and o["ablated_broken"] for o in outcomes),
        "headline": {"ablations_broken": float(sum(1 for o in outcomes if o["ablated_broken"]))},
        "wall_latency": wall_latency_of(*measured),
        "latency": {},
    }


# ---------------------------------------------------------------------------
# E12 (extension) — GWTS under partition/crash churn and adversarial schedules
# ---------------------------------------------------------------------------


def run_partition_churn_experiment(
    f: int = 1, rounds: int = 4, seed: int = 37,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "kernel",
    quick: bool = False,
) -> dict[str, Any]:
    """GWTS survives scripted partition + crash/recover churn (kernel faults).

    Three configurations, identical workload and seed:

    1. **calm** — no faults, the reference run;
    2. **churn** — a 2/2 partition that heals, then two crash/recover cycles
      on correct processes, scripted declaratively via :class:`FaultPlan`;
    3. **churn + worst-case schedule** — same fault plan, with a
      :class:`WorstCaseScheduler` starving every link of one correct process.

    The paper's liveness argument is asynchronous, so holding traffic for a
    finite time (partition, crash with reliable hand-over on recovery,
    starved links) may delay decisions arbitrarily but can never prevent
    them: every configuration must end with all correct processes decided
    and all decisions pairwise comparable, with the decision times strictly
    ordered calm < churn < worst-case.

    ``examples/partition_churn.py`` narrates the same scenario with the
    fault plan built by hand — keep the timing constants in sync.
    """
    if f < 1:
        raise ValueError("partition churn needs f >= 1 (n >= 4) to have groups to split")
    n = required_processes(f)
    pids = member_pids(n)
    rounds = 3 if quick else rounds
    byz = [lambda pid, lat, members, ff: SilentByzantine(pid) for _ in range(f)]
    correct = pids[: n - f]
    half = max(1, n // 2)
    plan = (
        FaultPlan()
        .partition(pids[:half], pids[half:], at=3.0, heal_at=18.0)
        .crash(correct[1 % len(correct)], at=20.0, recover_at=30.0)
        .crash(correct[-1], at=32.0, recover_at=42.0)
    )
    # The orchestrator's axis params replace this experiment's built-in churn
    # ingredients (rather than stacking on top of them): a custom fault plan
    # substitutes for the scripted churn, a custom scheduler for the built-in
    # worst case.  The calm reference configuration stays calm.
    scheduler_override = parse_scheduler(scheduler, pids=pids, f=f)
    fault_plan_override = parse_fault_plan(fault_plan, pids=pids, correct=correct)
    churn_plan = fault_plan_override or plan
    worst_scheduler = scheduler_override or WorstCaseScheduler(
        victims=[correct[0]], starve_delay=40.0, fast_delay=1.0
    )
    # The strict calm < churn < worst-case timing ordering is a claim about
    # the *built-in* churn script and starvation schedule; a substituted axis
    # may legitimately be faster than either, and a wall-clock backend
    # reports real seconds whose ordering is scheduling noise, so in both
    # cases the verdict checks only the schedule-independent properties
    # (safety + everyone decides).
    wall_clock = backend_is_wall_clock(backend)
    axes_overridden = scheduler_override is not None or fault_plan_override is not None

    def build(**kwargs):
        if "scheduler" not in kwargs:
            kwargs["delay_model"] = FixedDelay(1.0)
        return run_gwts_scenario(
            n=n,
            f=f,
            values_per_process=1,
            rounds=rounds,
            seed=seed,
            byzantine_factories=byz,
            backend=backend,
            **kwargs,
        )

    calm = build()
    churn = build(fault_plan=churn_plan)
    worst = build(fault_plan=churn_plan, scheduler=worst_scheduler)

    rows: list[Sequence[Any]] = []
    outcomes: list[dict[str, Any]] = []
    for name, scenario in (("calm", calm), ("churn", churn), ("churn+worst-case", worst)):
        check = scenario.check_gla(require_all_inputs_decided=False)
        decided = sum(1 for decs in scenario.decisions().values() if decs)
        last = max((record.time for record in scenario.metrics.decisions), default=0.0)
        outcomes.append(
            {
                "config": name,
                "decided": decided,
                "correct": len(scenario.correct_pids),
                "last_decision_time": last,
                "safety_ok": check.ok,
            }
        )
        rows.append(
            (
                name,
                f"{decided}/{len(scenario.correct_pids)}",
                f"{last:.1f}",
                "OK" if check.ok else "VIOLATED",
            )
        )
    headers = ["configuration", "decided", "last decision time", "properties"]
    calm_o, churn_o, worst_o = outcomes
    ok = all(o["safety_ok"] and o["decided"] == o["correct"] for o in outcomes) and (
        axes_overridden
        or wall_clock
        or calm_o["last_decision_time"]
        < churn_o["last_decision_time"]
        < worst_o["last_decision_time"]
    )
    return {
        "experiment": "E12",
        "skipped_checks": [_WALL_CLOCK_SKIP] if wall_clock else [],
        "expected": "churn and adversarial schedules delay decisions but never prevent them; comparability always holds",
        "outcomes": outcomes,
        "fault_plan": plan.describe(),
        "headers": headers,
        "rows": rows,
        "table": format_table(
            headers,
            rows,
            title="E12: GWTS under partition/crash churn (discrete-event kernel)",
        ),
        "ok": bool(ok),
        "headline": {"configs": float(len(outcomes))},
        "wall_latency": wall_latency_of(calm, churn, worst),
        "latency": {
            "calm_last_decision": calm_o["last_decision_time"],
            "churn_last_decision": churn_o["last_decision_time"],
            "worst_case_last_decision": worst_o["last_decision_time"],
        },
    }


# ---------------------------------------------------------------------------
# E13 (extension) — sharded + batched GLA: data-plane scaling study
# ---------------------------------------------------------------------------


def _sharded_point(
    shards: int,
    batch_size: int | None,
    total_commands: int,
    seed: int,
    scheduler: str,
    fault_plan: str,
    backend: str,
    n_replicas: int,
    f: int = 1,
) -> dict[str, Any]:
    """Run one sharded-RSM configuration and report deterministic metrics.

    Throughput is measured in *simulated* time (commands per simulated time
    unit): deterministic given the seed, so the sweep artifact stays
    byte-identical across machines and worker counts, unlike wall-clock
    rates (those live in ``benchmarks/bench_shard_throughput.py``).
    """
    per_client = total_commands // 2
    scripts = {
        f"c{index}": [("update", (f"obj-{index}-{k}", k)) for k in range(per_client)]
        for index in range(2)
    }
    scenario = run_sharded_rsm_scenario(
        n_replicas=n_replicas,
        f=f,
        shards=shards,
        client_scripts=scripts,
        # Worst case one command per round per shard, plus slack for ramp-up.
        rounds=total_commands + 10,
        seed=seed,
        scheduler=scheduler,
        fault_plan=fault_plan,
        backend=backend,
        batch_size=batch_size,
        client_pipeline=16,
        max_messages=6_000_000,
    )
    clients = scenario.extras["clients"].values()
    completed = sum(client.completed_updates() for client in clients)
    makespan = max(
        (
            record.end_time
            for client in clients
            for inner in client.clients
            for record in inner.history
            if record.kind == "update" and record.completed
        ),
        default=0.0,
    )
    return {
        "shards": shards,
        "batch_size": batch_size,
        "completed": completed,
        "expected": 2 * per_client,
        "messages": scenario.run.delivered,
        "msgs_per_command": scenario.run.delivered / max(1, completed),
        "makespan": makespan,
        "throughput": completed / makespan if makespan > 0 else 0.0,
        "scenario": scenario,
    }


def run_shard_scaling_experiment(
    seed: int = 41,
    scheduler: str = "",
    fault_plan: str = "",
    backend: str = "turbo",
    quick: bool = False,
) -> dict[str, Any]:
    """E13: throughput vs batch size and shard count, plus the large-n study.

    Three sections, all on the deterministic simulated clock:

    1. **Batch curve** — 25 replicas as 5 shards of 5 (f=1 per group), the
       same command stream under ``batch_size`` 1..16.  Capping the per-round
       batch at 1 forces one GWTS round per command; batching amortises the
       round's O(group³) reliable-broadcast ack traffic over the whole batch,
       so simulated throughput must grow at least 2x from batch 1 to 8.
    2. **Shard curve** — a fixed fleet of 24 replicas split into 2..6 groups.
       Per-round message cost scales with the *cube* of the group size, so
       more shards means superlinearly fewer messages per command.  (The
       monolithic 1x24 anchor is measured in the wall-clock benchmark
       artifact ``BENCH_shard.json`` — a single group of 24 runs ~800k
       messages per round, too slow for the sweep path.)
    3. **Large-n quorum study** — message complexity and decision latency at
       n=100 and n=250.  Full Byzantine GLA at those sizes is measured where
       feasible (WTS single-shot at n=100); the echo-based crash baseline
       covers both sizes, so the quorum-size trend (majority vs Byzantine
       quorum) is read off the same table.
    """
    wall_clock = backend_is_wall_clock(backend)

    # -- 1. batch curve: 5 shards x 5 replicas = 25 ----------------------------
    batch_sweep = (1, 8) if quick else (1, 2, 4, 8, 16)
    batch_commands = 40 if quick else 60
    batch_points = [
        _sharded_point(
            shards=5,
            batch_size=batch,
            total_commands=batch_commands,
            seed=seed,
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
            n_replicas=25,
        )
        for batch in batch_sweep
    ]
    batch_rows = [
        (
            point["batch_size"],
            f"{point['completed']}/{point['expected']}",
            point["messages"],
            f"{point['msgs_per_command']:.0f}",
            f"{point['makespan']:.1f}",
            f"{point['throughput']:.3f}",
        )
        for point in batch_points
    ]
    base = batch_points[0]
    batched = max(
        (p for p in batch_points if p["batch_size"] and p["batch_size"] >= 8),
        key=lambda p: p["throughput"],
    )
    batch_speedup = batched["throughput"] / max(base["throughput"], 1e-9)

    # -- 2. shard curve: fixed fleet of 24 replicas ----------------------------
    shard_sweep = (2, 6) if quick else (2, 3, 4, 6)
    shard_commands = 24 if quick else 48
    shard_points = [
        _sharded_point(
            shards=shards,
            batch_size=8,
            total_commands=shard_commands,
            seed=seed,
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
            n_replicas=24,
        )
        for shards in shard_sweep
    ]
    shard_rows = [
        (
            point["shards"],
            24 // point["shards"],
            f"{point['completed']}/{point['expected']}",
            point["messages"],
            f"{point['msgs_per_command']:.0f}",
            f"{point['throughput']:.3f}",
        )
        for point in shard_points
    ]
    shard_scaleup = shard_points[-1]["throughput"] / max(
        shard_points[0]["throughput"], 1e-9
    )

    # -- 3. large-n quorum study ------------------------------------------------
    scaling_rows: list[Sequence[Any]] = []
    scaling_outcomes: list[dict[str, Any]] = []
    scaling_scenarios: list = []

    def record_scaling(name: str, n: int, f: int, scenario, quorum: int) -> None:
        scaling_scenarios.append(scenario)
        decided = sum(1 for decs in scenario.decisions().values() if decs)
        per_process = scenario.metrics.mean_messages_per_process(scenario.correct_pids)
        last = max((r.time for r in scenario.metrics.decisions), default=0.0)
        scaling_outcomes.append(
            {
                "protocol": name,
                "n": n,
                "f": f,
                "quorum": quorum,
                "decided": decided,
                "correct": len(scenario.correct_pids),
                "msgs_per_process": per_process,
                "last_decision_time": last,
            }
        )
        scaling_rows.append(
            (
                name,
                n,
                f,
                quorum,
                f"{decided}/{len(scenario.correct_pids)}",
                f"{per_process:.0f}",
                f"{last:.1f}",
            )
        )

    crash_sizes = (100,) if quick else (100, 250)
    for n in crash_sizes:
        f = max_faults(n)
        crash = run_crash_gla_scenario(
            n=n,
            f=f,
            values_per_process=1,
            rounds=2,
            seed=seed + n,
            delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
            max_messages=4_000_000,
        )
        record_scaling("crash-GLA", n, f, crash, quorum=n // 2 + 1)
    if not quick:
        n = 100
        f = max_faults(n)
        wts = run_wts_scenario(
            n=n,
            f=f,
            proposals={f"p{i}": frozenset({f"v{i}"}) for i in range(3)},
            seed=seed + 1000,
            delay_model=FixedDelay(1.0),
            scheduler=scheduler,
            fault_plan=fault_plan,
            backend=backend,
            max_messages=4_000_000,
        )
        record_scaling("WTS", n, f, wts, quorum=(n + f) // 2 + 1)

    # -- verdict ------------------------------------------------------------------
    all_completed = all(
        point["completed"] == point["expected"]
        for point in batch_points + shard_points
    )
    all_decided = all(o["decided"] == o["correct"] for o in scaling_outcomes)
    msgs_drop = all(
        earlier["msgs_per_command"] > later["msgs_per_command"]
        for earlier, later in zip(shard_points, shard_points[1:], strict=False)
    )
    if wall_clock:
        # Wall-clock backends report real seconds: the simulated-throughput
        # ratios are scheduling noise there, so judge completion only.
        ok = all_completed and all_decided
    else:
        ok = all_completed and all_decided and batch_speedup >= 2.0 and msgs_drop

    batch_headers = ["batch", "completed", "messages", "msgs/cmd", "makespan", "cmds/time"]
    shard_headers = ["shards", "group", "completed", "messages", "msgs/cmd", "cmds/time"]
    scaling_headers = ["protocol", "n", "f", "quorum", "decided", "msgs/proc", "delays"]
    table = (
        format_table(
            batch_headers,
            batch_rows,
            title=f"E13a: batch curve, 25 replicas as 5x5 (speedup {batch_speedup:.1f}x)",
        )
        + "\n\n"
        + format_table(
            shard_headers,
            shard_rows,
            title=f"E13b: shard curve, 24 replicas (scale-up {shard_scaleup:.1f}x)",
        )
        + "\n\n"
        + format_table(scaling_headers, scaling_rows, title="E13c: large-n quorum study")
    )
    return {
        "experiment": "E13",
        "expected": "batching amortises the per-round O(group^3) ack traffic (>=2x at batch 8); "
        "more shards of a fixed fleet cut messages per command superlinearly; "
        "large-n rows expose the quorum-size cost",
        "batch_points": [
            {k: v for k, v in point.items() if k != "scenario"} for point in batch_points
        ],
        "shard_points": [
            {k: v for k, v in point.items() if k != "scenario"} for point in shard_points
        ],
        "scaling": scaling_outcomes,
        "batch_speedup": batch_speedup,
        "shard_scaleup": shard_scaleup,
        "headers": batch_headers,
        "rows": batch_rows,
        "shard_headers": shard_headers,
        "shard_rows": shard_rows,
        "scaling_headers": scaling_headers,
        "scaling_rows": scaling_rows,
        "table": table,
        "ok": bool(ok),
        "skipped_checks": [_WALL_CLOCK_SKIP] if wall_clock else [],
        "headline": {
            "batch_speedup": batch_speedup,
            "shard_scaleup": shard_scaleup,
            "max_n": float(max(o["n"] for o in scaling_outcomes)),
        },
        "wall_latency": wall_latency_of(
            *(point["scenario"] for point in batch_points + shard_points),
            *scaling_scenarios,
        ),
        "latency": {
            "batch1_makespan": base["makespan"],
            "batch8_makespan": batched["makespan"],
            "largest_n_last_decision": scaling_outcomes[-1]["last_decision_time"]
            if scaling_outcomes
            else 0.0,
        },
    }


def _render(value: Any) -> str:
    if isinstance(value, frozenset):
        return "{" + ",".join(sorted(map(str, value))) + "}"
    return repr(value)


#: Registry used by the CLI example and by documentation generation.
ALL_EXPERIMENTS: dict[str, Callable[..., dict[str, Any]]] = {
    "E1": run_chain_experiment,
    "E2": run_resilience_experiment,
    "E3": run_wts_latency_experiment,
    "E4": run_wts_messages_experiment,
    "E5": run_sbs_experiment,
    "E6": run_gwts_messages_experiment,
    "E7": run_gwts_liveness_experiment,
    "E8": run_rsm_experiment,
    "E9": run_breadth_experiment,
    "E10": run_baseline_comparison,
    "E11": run_ablation_experiment,
    "E12": run_partition_churn_experiment,
    "E13": run_shard_scaling_experiment,
}
