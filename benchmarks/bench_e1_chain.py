"""E1 — Figure 1: decisions of a WTS run form a chain in the power-set lattice."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_chain_experiment


def test_e1_chain(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_chain_experiment)
    assert outcome["is_chain"], "decisions must form a chain (Figure 1)"
    assert outcome["check"].ok
