"""E1 — Figure 1: decisions of a WTS run form a chain in the power-set lattice."""

from conftest import run_experiment_benchmark


def test_e1_chain(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E1")
    assert outcome["is_chain"], "decisions must form a chain (Figure 1)"
    assert outcome["ok"], outcome["table"]
