"""Micro-benchmarks of the substrates the algorithms are built on.

These are classic pytest-benchmark kernels (many iterations of a small
operation) complementing the E1–E10 experiment benchmarks: lattice joins,
reliable broadcast, network delivery throughput and signature verification.
They are useful when profiling changes to the substrate code paths that
dominate the big experiments.
"""

import random

from repro.broadcast import ReliableBroadcaster
from repro.crypto import KeyRegistry
from repro.engine import AsyncEngine, FixedDelay, KernelEngine, ProtocolCore, TurboEngine
from repro.lattice import GCounterLattice, MapLattice, SetLattice, VectorClockLattice


def test_set_lattice_join_all(benchmark):
    lattice = SetLattice()
    rng = random.Random(0)
    elements = [frozenset(rng.sample(range(200), 12)) for _ in range(300)]
    result = benchmark(lattice.join_all, elements)
    assert len(result) > 0


def test_gcounter_join(benchmark):
    lattice = GCounterLattice()
    a = lattice.lift({f"p{i}": i for i in range(50)})
    b = lattice.lift({f"p{i}": 100 - i for i in range(50)})
    result = benchmark(lattice.join, a, b)
    assert lattice.value(result) > 0


def test_vector_clock_join(benchmark):
    lattice = VectorClockLattice(64)
    a = tuple(range(64))
    b = tuple(reversed(range(64)))
    result = benchmark(lattice.join, a, b)
    assert lattice.is_element(result)


def test_map_lattice_join(benchmark):
    lattice = MapLattice(SetLattice())
    a = lattice.lift({f"k{i}": {i, i + 1} for i in range(60)})
    b = lattice.lift({f"k{i}": {i + 2} for i in range(30, 90)})
    result = benchmark(lattice.join, a, b)
    assert lattice.is_element(result)


def test_signature_roundtrip(benchmark):
    registry = KeyRegistry(seed=1)
    signer = registry.register("p0")
    payload = ("round", 3, frozenset({"a", "b", "c"}))

    def roundtrip():
        signed = signer.sign(payload)
        assert registry.verify(signed)

    benchmark(roundtrip)


class _Sink(ProtocolCore):
    """Core that counts deliveries (for raw engine throughput)."""

    def __init__(self, pid):
        super().__init__(pid)
        self.seen = 0

    def on_message(self, sender, payload):
        self.seen += 1


class _Chirper(_Sink):
    """Broadcasts 20 rounds of pings at start (engine throughput driver)."""

    def on_start(self):
        for _ in range(20):
            self.broadcast(("ping", self.pid))


def _engine_throughput(engine_class):
    engine = engine_class(delay_model=FixedDelay(1.0), seed=0)
    nodes = [engine.add_core(_Chirper(f"p{i}")) for i in range(10)]
    engine.run_until_quiescent()
    return sum(node.seen for node in nodes)


def test_kernel_engine_delivery_throughput(benchmark):
    delivered = benchmark(_engine_throughput, KernelEngine)
    assert delivered == 10 * 10 * 20


def test_turbo_engine_delivery_throughput(benchmark):
    delivered = benchmark(_engine_throughput, TurboEngine)
    assert delivered == 10 * 10 * 20


def test_async_engine_delivery_throughput(benchmark):
    """The asyncio backend's in-process transport (event-loop overhead row)."""
    delivered = benchmark(_engine_throughput, AsyncEngine)
    assert delivered == 10 * 10 * 20


def _async_tcp_throughput(framing):
    engine = AsyncEngine(
        delay_model=FixedDelay(1.0), seed=0, transport="tcp", time_scale=0.0,
        framing=framing,
    )
    nodes = [engine.add_core(_Chirper(f"p{i}")) for i in range(10)]
    engine.run(max_wall_s=120.0)
    return sum(node.seen for node in nodes)


def test_async_tcp_delivery_throughput(benchmark):
    """The real network path: localhost TCP, length-prefixed JSON frames."""
    delivered = benchmark(_async_tcp_throughput, "json")
    assert delivered == 10 * 10 * 20


def test_async_tcp_binary_delivery_throughput(benchmark):
    """The same socket path on the compact binary framing."""
    delivered = benchmark(_async_tcp_throughput, "binary")
    assert delivered == 10 * 10 * 20


class _RBHost(ProtocolCore):
    """Minimal host running a reliable-broadcast endpoint."""

    def __init__(self, pid, n, f):
        super().__init__(pid)
        self.n = n
        self.f = f
        self.delivered = []
        self.rb = None

    def on_start(self):
        self.rb = ReliableBroadcaster(
            node=self, n=self.n, f=self.f,
            deliver=lambda origin, tag, value: self.delivered.append((origin, tag, value)),
        )
        if self.pid == "p0":
            self.rb.broadcast("bench", ("payload", 42))

    def on_message(self, sender, payload):
        self.rb.handle(sender, payload)


def test_reliable_broadcast_round(benchmark):
    def run():
        n, f = 7, 2
        engine = KernelEngine(delay_model=FixedDelay(1.0), seed=0)
        hosts = [engine.add_core(_RBHost(f"p{i}", n, f)) for i in range(n)]
        engine.run_until_quiescent()
        return sum(len(host.delivered) for host in hosts)

    delivered = benchmark(run)
    assert delivered == 7
