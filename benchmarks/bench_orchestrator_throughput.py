#!/usr/bin/env python3
"""Orchestrator campaign throughput: persistent pool vs process-per-job.

The PR 10 execution layer forks ``workers`` long-lived children once per
sweep and feeds them jobs over request/reply pipes; the design it replaced
forked a fresh OS process for every job.  For the workloads that motivated
the change — thousands of small jobs (the nightly 500-scenario campaigns,
10k-job ``batch=``/``shards=`` sweeps) — fork startup dominates, so this
benchmark measures exactly that regime:

* **dispatch workload (gated)** — SLEEP jobs with ``duration=0``: the job
  body is free, so jobs/s is pure orchestration cost (fork vs pipe
  round-trip).  The committed ``pool_vs_spawn`` ratio is the acceptance
  number: the persistent pool must clear **1.5x** process-per-job
  (``--min-pool-speedup``), and CI compares the ratio against the committed
  artifact — ratios transfer across machines where absolute rates do not.
* **realism row (recorded, not gated)** — the same pair on E1 quick jobs,
  where the job body does real work; it documents how much of the win
  survives once jobs stop being free.

The process-per-job baseline is reimplemented here (bounded concurrency,
one fork per job, same payload machinery) because the shipping pool no
longer works that way — the baseline is the yardstick, not a code path.

Run::

    PYTHONPATH=src python benchmarks/bench_orchestrator_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_orchestrator_throughput.py --smoke    # CI subset
    PYTHONPATH=src python benchmarks/bench_orchestrator_throughput.py \
        --json BENCH_orchestrator.json                                           # artifact
    PYTHONPATH=src python benchmarks/bench_orchestrator_throughput.py --smoke \
        --check-against BENCH_orchestrator.json --min-pool-speedup 1.5           # CI gate
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import subprocess
import sys
import time
from multiprocessing.connection import wait as connection_wait

from repro.orchestrator.jobs import JobSpec
from repro.orchestrator.pool import execute_job, iter_job_results

BENCH_SCHEMA = "repro-bench-orchestrator/v1"

WORKERS = 4
FULL_DISPATCH_JOBS = 400
SMOKE_DISPATCH_JOBS = 120
FULL_REAL_JOBS = 24
SMOKE_REAL_JOBS = 12


def dispatch_jobs(count: int) -> list[JobSpec]:
    """SLEEP duration=0: the cheapest job the registry can express."""
    return [
        JobSpec(
            experiment="SLEEP", seed=seed, params=(("duration", 0.0),),
            quick=False, timeout_s=None, index=seed,
        )
        for seed in range(count)
    ]


def real_jobs(count: int) -> list[JobSpec]:
    """E1 quick across seeds: jobs whose body does real protocol work."""
    return [
        JobSpec(experiment="E1", seed=seed, params=(), quick=True, timeout_s=None, index=seed)
        for seed in range(count)
    ]


def _spawn_child(connection, job: JobSpec) -> None:
    try:
        connection.send(execute_job(job))
    finally:
        connection.close()


def run_process_per_job(jobs: list[JobSpec], workers: int) -> int:
    """The retired design: one fork per job, ``workers`` in flight."""
    context = multiprocessing.get_context()
    pending = list(jobs)
    pending.reverse()
    running: dict = {}
    done = 0
    while pending or running:
        while pending and len(running) < workers:
            job = pending.pop()
            parent_conn, child_conn = context.Pipe(duplex=False)
            process = context.Process(target=_spawn_child, args=(child_conn, job), daemon=True)
            process.start()
            child_conn.close()
            running[parent_conn] = process
        for connection in connection_wait(list(running)):
            process = running.pop(connection)
            try:
                connection.recv()
            except EOFError:
                pass
            connection.close()
            process.join()
            done += 1
    return done


def run_persistent_pool(jobs: list[JobSpec], workers: int) -> int:
    done = 0
    for _position, _result in iter_job_results(jobs, workers=workers):
        done += 1
    return done


def measure(runner, jobs: list[JobSpec], workers: int, repeats: int) -> float:
    """Best-of-``repeats`` jobs/s."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        done = runner(jobs, workers)
        elapsed = time.perf_counter() - start
        assert done == len(jobs), (done, len(jobs))
        best = min(best, elapsed)
    return len(jobs) / best


def check_regression(speedups: dict, baseline_path: str, max_regression: float) -> list:
    """Compare speedup *ratios* against the committed baseline artifact."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    problems = []
    for ratio_name in ("pool_vs_spawn",):
        recorded = baseline.get("speedups", {}).get(ratio_name)
        current = speedups.get(ratio_name)
        if recorded is None or current is None:
            continue
        floor = recorded * (1.0 - max_regression)
        if current < floor:
            problems.append(
                f"{ratio_name}: {current:.2f}x is more than "
                f"{max_regression:.0%} below the committed {recorded:.2f}x"
            )
    return problems


def _git_sha() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return completed.stdout.strip() if completed.returncode == 0 else "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: fewer jobs per point, same measured ratios",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per point; best (minimum) elapsed is used",
    )
    parser.add_argument(
        "--workers", type=int, default=WORKERS,
        help=f"worker processes for both designs (default {WORKERS})",
    )
    parser.add_argument(
        "--min-pool-speedup", type=float, default=None,
        help="exit non-zero unless pool jobs/s >= this multiple of process-per-job",
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the BENCH_orchestrator.json perf artifact to PATH",
    )
    parser.add_argument(
        "--check-against", metavar="BASELINE", default=None,
        help="fail if the pool_vs_spawn ratio regresses vs this committed artifact",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.5,
        help="allowed relative drop of a speedup ratio before failing "
        "(default 0.5: fork cost varies with machine load)",
    )
    args = parser.parse_args(argv)

    dispatch_count = SMOKE_DISPATCH_JOBS if args.smoke else FULL_DISPATCH_JOBS
    real_count = SMOKE_REAL_JOBS if args.smoke else FULL_REAL_JOBS

    dispatch = dispatch_jobs(dispatch_count)
    pool_rate = measure(run_persistent_pool, dispatch, args.workers, args.repeats)
    spawn_rate = measure(run_process_per_job, dispatch, args.workers, args.repeats)

    real = real_jobs(real_count)
    real_pool_rate = measure(run_persistent_pool, real, args.workers, args.repeats)
    real_spawn_rate = measure(run_process_per_job, real, args.workers, args.repeats)

    speedups = {
        "pool_vs_spawn": pool_rate / spawn_rate,
        "pool_vs_spawn_real": real_pool_rate / real_spawn_rate,
    }

    print(f"dispatch workload: {dispatch_count} SLEEP(0) jobs, "
          f"{args.workers} workers, repeats={args.repeats}")
    print(f"  persistent pool:  {pool_rate:>9.1f} jobs/s")
    print(f"  process-per-job:  {spawn_rate:>9.1f} jobs/s")
    print(f"realism workload: {real_count} E1 quick jobs")
    print(f"  persistent pool:  {real_pool_rate:>9.1f} jobs/s")
    print(f"  process-per-job:  {real_spawn_rate:>9.1f} jobs/s")
    for name, value in speedups.items():
        print(f"{name}: {value:.2f}x")

    if args.json:
        payload = {
            "schema": BENCH_SCHEMA,
            "git_sha": _git_sha(),
            "created_unix": time.time(),
            "python": sys.version.split()[0],
            "workers": args.workers,
            "repeats": args.repeats,
            "jobs": {"dispatch": dispatch_count, "real": real_count},
            "jobs_per_second": {
                "dispatch_pool": round(pool_rate, 2),
                "dispatch_spawn": round(spawn_rate, 2),
                "real_pool": round(real_pool_rate, 2),
                "real_spawn": round(real_spawn_rate, 2),
            },
            "speedups": {name: round(value, 3) for name, value in speedups.items()},
        }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    status = 0
    if args.min_pool_speedup is not None:
        measured = speedups["pool_vs_spawn"]
        if measured < args.min_pool_speedup:
            print(f"FAIL: pool_vs_spawn {measured:.2f}x < "
                  f"required {args.min_pool_speedup:.2f}x")
            status = 1
    if args.check_against:
        problems = check_regression(speedups, args.check_against, args.max_regression)
        for problem in problems:
            print(f"FAIL: {problem}")
        if problems:
            status = 1
        else:
            print(f"regression gate OK (allowed drop {args.max_regression:.0%})")
    return status


if __name__ == "__main__":
    sys.exit(main())
