"""E3 — Theorem 3: WTS decides within 2f + 5 message delays."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_wts_latency_experiment


def test_e3_wts_latency(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_wts_latency_experiment)
    for f, measured in outcome["series"].items():
        assert measured <= 2 * f + 5, f"latency {measured} exceeds 2f+5 for f={f}"
