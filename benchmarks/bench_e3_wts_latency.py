"""E3 — Theorem 3: WTS decides within 2f + 5 message delays."""

from conftest import run_experiment_benchmark


def test_e3_wts_latency(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E3")
    for f, measured in outcome["series"].items():
        assert measured <= 2 * f + 5, f"latency {measured} exceeds 2f+5 for f={f}"
    assert outcome["ok"], outcome["table"]
