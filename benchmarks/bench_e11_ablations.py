"""E11 (extension) — ablation study of the two WTS design choices."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_ablation_experiment


def test_e11_ablations(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_ablation_experiment, quick=False)
    for row in outcome["outcomes"]:
        # Intact WTS always survives the attack its removed defence targets...
        assert row["intact_ok"], row
        # ...and the ablated variant is broken by it (on some scanned schedule).
        assert row["ablated_broken"], row
