"""E11 (extension) — ablation study of the two WTS design choices."""

from conftest import run_experiment_benchmark


def test_e11_ablations(benchmark):
    # quick=False: the attack's success depends on the schedule, so give the
    # seed scan its full range.
    outcome = run_experiment_benchmark(benchmark, "E11", quick=False)
    assert outcome["ok"], outcome["table"]
