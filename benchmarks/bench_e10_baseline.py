"""E10 — Byzantine tolerance overhead vs the crash-fault baseline."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_baseline_comparison


def test_e10_baseline(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_baseline_comparison)
    for n, wts_msgs in outcome["wts_series"].items():
        crash_msgs = outcome["crash_series"][n]
        # Byzantine tolerance is never free: WTS always sends more messages.
        assert wts_msgs > crash_msgs
