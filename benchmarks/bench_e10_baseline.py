"""E10 — Byzantine tolerance overhead vs the crash-fault baseline."""

from conftest import run_experiment_benchmark


def test_e10_baseline(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E10")
    # Byzantine tolerance is never free: WTS always sends more messages.
    assert outcome["ok"], outcome["table"]
