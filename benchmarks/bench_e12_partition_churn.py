"""E12 (extension) — GWTS under partition/crash churn and adversarial schedules."""

from conftest import run_experiment_benchmark


def test_e12_partition_churn(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E12")
    # Churn and the worst-case schedule delay decisions (strictly ordered
    # calm < churn < worst-case) but never prevent them.
    assert outcome["ok"], outcome["table"]
