"""E5 — Theorem 8 / Section 8.1: SbS latency 5 + 4f, messages O(n) for f = O(1)."""

from conftest import run_experiment_benchmark


def test_e5_sbs(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E5")
    # Linear message shape in n for fixed f, latency within 5 + 4f.
    assert outcome["ok"], outcome["table"]
    for f, latest in outcome["latency_series"].items():
        assert latest <= 5 + 4 * f
