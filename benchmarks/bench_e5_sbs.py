"""E5 — Theorem 8 / Section 8.1: SbS latency 5 + 4f, messages O(n) for f = O(1)."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_sbs_experiment


def test_e5_sbs(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_sbs_experiment)
    # Linear shape in n for fixed f.
    assert 0.7 <= outcome["fit_order"] <= 1.5
    for f, n, measured, bound in outcome["latency_rows"]:
        assert float(measured) <= bound
