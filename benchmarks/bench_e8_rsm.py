"""E8 — Section 7: RSM linearizability and wait-freedom with Byzantine clients."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_rsm_experiment


def test_e8_rsm(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_rsm_experiment)
    assert outcome["check"].ok
    # Every read of the replicated counter observed all completed increments
    # that happened before it (the values are monotone and end at the total).
    values = outcome["counter_values"]
    assert values and max(values) >= 1
