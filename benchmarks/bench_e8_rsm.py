"""E8 — Section 7: RSM linearizability and wait-freedom with Byzantine clients."""

from conftest import run_experiment_benchmark


def test_e8_rsm(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E8")
    # Every read of the replicated counter observed all completed increments
    # that happened before it (the values are monotone and end at the total).
    assert outcome["ok"], outcome["table"]
