"""E2 — Theorem 1: necessity of 3f + 1 processes."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_resilience_experiment


def test_e2_resilience(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_resilience_experiment)
    wts_small, crash_small, wts_big = outcome["outcomes"]
    # n = 3f with a Byzantine quorum: safety kept, liveness lost.
    assert wts_small["safety_ok"] and not wts_small["live"]
    # n = 3f with a majority quorum: live but unsafe.
    assert crash_small["live"] and not crash_small["safety_ok"]
    # n = 3f + 1: both hold.
    assert wts_big["safety_ok"] and wts_big["live"]
