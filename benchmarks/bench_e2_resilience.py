"""E2 — Theorem 1: necessity of 3f + 1 processes."""

from conftest import run_experiment_benchmark


def test_e2_resilience(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E2")
    # The experiment's verdict encodes the full Theorem 1 pattern: n = 3f
    # loses liveness (Byzantine quorum) or safety (majority quorum), while
    # n = 3f + 1 keeps both.
    assert outcome["ok"], outcome["table"]
