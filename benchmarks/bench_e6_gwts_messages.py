"""E6 — Section 6.4: GWTS messages per proposer per decision are O(f * n^2)."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_gwts_messages_experiment


def test_e6_gwts_messages(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_gwts_messages_experiment)
    # With f growing as (n-1)/3 in the sweep, O(f n^2) behaves like n^3:
    # the log-log slope should land between quadratic and comfortably
    # above-cubic-with-noise.
    assert 1.8 <= outcome["fit_order"] <= 3.6
