"""E6 — Section 6.4: GWTS messages per proposer per decision are O(f * n^2)."""

from conftest import run_experiment_benchmark


def test_e6_gwts_messages(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E6")
    # With f growing as (n-1)/3 in the sweep, O(f n^2) behaves like n^3: the
    # verdict checks the log-log slope lands between quadratic and
    # comfortably-above-cubic-with-noise.
    assert outcome["ok"], f"fit order {outcome['fit_order']:.2f} outside [1.8, 3.6]"
