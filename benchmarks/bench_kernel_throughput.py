#!/usr/bin/env python3
"""Engine throughput: events/sec of every execution path, past and present.

Five substrates run the identical workload — ``n`` nodes forwarding tokens
round-robin until ``--messages`` total deliveries — so the ratios isolate
the messaging substrate:

* **seed** — in-file replica of the original pre-kernel transport loop
  (frozen-dataclass envelope, eager size estimation, heap of tuples);
* **shim** — in-file replica of the retired PR 1–3 path: the ``Network`` /
  ``NodeContext`` compatibility shims layered on the sim kernel (one
  envelope + one ``MessageDelivery`` event + context indirection + metrics
  + delivery log per message) — the *pre-refactor* hot path that the
  sans-I/O refactor removed;
* **kernel** — the current reference backend
  (:class:`repro.engine.KernelEngine`) driving sans-I/O protocol cores;
* **turbo** — the fast-path backend (:class:`repro.engine.TurboEngine`):
  no per-message shim objects, interned node ids, preallocated effect
  buffers, calendar-bucketed event queue (same-timestamp bursts cost one
  heap sift instead of one per message);
* **async** — the asyncio backend (:class:`repro.engine.AsyncEngine`,
  in-process transport): the network-path row — the wire-speed rework
  dispatches the virtual-time calendar inline on the event loop (no
  per-delivery task/queue hand-off), so this tracks what the asyncio
  machinery costs once the per-message overhead is gone.

The acceptance bars: ``turbo`` must deliver at least 2x the events/s of
``shim`` on the full workload (n=25, 200k msgs), and ``async`` must beat
``seed`` (``--min-async-vs-seed``) — real event-loop machinery is allowed
to cost something, but never more than the retired pre-kernel loop.  The
regression gate compares the turbo/shim, kernel/shim and async/seed
ratios against the committed artifact.

Run::

    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py             # full: 200k msgs
    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py --smoke     # CI: 20k msgs
    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py \
        --json BENCH_kernel.json                                            # perf trajectory
    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py --smoke \
        --check-against BENCH_kernel.json --max-regression 0.25             # CI gate

The JSON artifact records best-of-``--repeats`` events/s per substrate plus
the git SHA and timestamp; the regression gate compares the *speedup ratios*
(turbo/shim, kernel/shim) against the committed baseline — ratios transfer
across machines where absolute rates do not.
"""

from __future__ import annotations

import argparse
import heapq
import json
import pathlib
import subprocess
import sys
import time
from collections.abc import Hashable
from dataclasses import dataclass
from typing import Any

from repro.engine import AsyncEngine, FixedDelay, KernelEngine, ProtocolCore, TurboEngine
from repro.engine.envelope import Envelope, estimate_size
from repro.metrics.collector import MetricsCollector
from repro.sim.events import MessageDelivery
from repro.sim.kernel import SimKernel

BENCH_SCHEMA = "repro-bench-kernel/v1"


# ---------------------------------------------------------------------------
# Workload: round-robin forwarding, `hops` messages per chain
# ---------------------------------------------------------------------------


class Forwarder(ProtocolCore):
    """Starts one chain and forwards every received token to the next core."""

    def __init__(self, pid: int, n: int, hops: int) -> None:
        super().__init__(pid)
        self.n = n
        self.hops = hops

    def _next(self) -> int:
        return (self.pid + 1) % self.n

    def on_start(self) -> None:
        if self.hops > 0:
            self.send(self._next(), (self.hops, frozenset({"tok", str(self.pid)})))

    def on_message(self, sender: Hashable, payload: Any) -> None:
        hops, token = payload
        if hops > 1:
            self.send(self._next(), (hops - 1, token))


class _CallbackForwarder:
    """The same workload as a classic callback node (for the replicas)."""

    def __init__(self, pid: int, n: int, hops: int) -> None:
        self.pid = pid
        self.n = n
        self.hops = hops
        self.causal_depth = 0
        self.ctx = None

    def bind(self, ctx) -> None:
        self.ctx = ctx

    def _next(self) -> int:
        return (self.pid + 1) % self.n

    def on_start(self) -> None:
        if self.hops > 0:
            self.ctx.send(self._next(), (self.hops, frozenset({"tok", str(self.pid)})))

    def on_message(self, sender: Hashable, payload: Any) -> None:
        hops, token = payload
        if hops > 1:
            self.ctx.send(self._next(), (hops - 1, token))


# ---------------------------------------------------------------------------
# Seed-equivalent baseline transport (pre-kernel semantics, verbatim)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SeedEnvelope:
    """Replica of the seed's frozen-dataclass envelope."""

    sender: Hashable
    dest: Hashable
    payload: Any
    send_time: float
    deliver_time: float | None = None
    depth: int = 1
    seq: int = 0
    size: int = 0

    def delivered_at(self, time: float) -> _SeedEnvelope:
        return _SeedEnvelope(
            sender=self.sender,
            dest=self.dest,
            payload=self.payload,
            send_time=self.send_time,
            deliver_time=time,
            depth=self.depth,
            seq=self.seq,
            size=self.size,
        )

    @property
    def mtype(self) -> str:
        payload = self.payload
        mtype = getattr(payload, "mtype", None)
        if isinstance(mtype, str):
            return mtype
        return type(payload).__name__


class _Context:
    """Replica of the retired ``NodeContext`` capability object."""

    def __init__(self, network, pid) -> None:
        self._network = network
        self._pid = pid

    def send(self, dest, payload) -> None:
        self._network.submit(self._pid, dest, payload)


class _SeedNetwork:
    """The pre-kernel message-only delivery loop (eager sizes, frozen copies)."""

    def __init__(self, delay_model, seed: int = 0) -> None:
        import random

        self._nodes = {}
        self._queue = []
        self._seq = 0
        self._delay_model = delay_model
        self._rng = random.Random(seed)
        self._now = 0.0
        self.metrics = MetricsCollector()
        self._delivery_log = []
        self._started = False

    @property
    def now(self):
        return self._now

    def add_node(self, node):
        self._nodes[node.pid] = node
        node.bind(_Context(self, node.pid))
        return node

    def submit(self, sender, dest, payload):
        sender_node = self._nodes[sender]
        self._seq += 1
        envelope = _SeedEnvelope(
            sender=sender,
            dest=dest,
            payload=payload,
            send_time=self._now,
            depth=sender_node.causal_depth + 1,
            seq=self._seq,
            size=estimate_size(payload),
        )
        delay = self._delay_model.delay(envelope, self._rng)
        heapq.heappush(self._queue, (self._now + delay, self._seq, envelope))
        self.metrics.record_send(sender, dest, envelope.mtype, envelope.size)
        return envelope

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for node in self._nodes.values():
            node.on_start()

    def step(self):
        if not self._queue:
            return None
        deliver_time, _seq, envelope = heapq.heappop(self._queue)
        self._now = max(self._now, deliver_time)
        delivered = envelope.delivered_at(self._now)
        receiver = self._nodes[delivered.dest]
        receiver.causal_depth = max(receiver.causal_depth, delivered.depth)
        self.metrics.record_delivery(delivered.sender, delivered.dest, delivered.mtype)
        self._delivery_log.append(delivered)
        receiver.on_message(delivered.sender, delivered.payload)
        return delivered


# ---------------------------------------------------------------------------
# Shim replica: the retired PR 1-3 Network-on-kernel path, faithfully
# ---------------------------------------------------------------------------


class _ShimNetwork:
    """Replica of the retired ``Network`` shim over :class:`SimKernel`.

    One mutable envelope + one ``MessageDelivery`` event allocated per send,
    per-message metrics and delivery-log accounting, ``NodeContext``
    indirection on every emit — the double bookkeeping the sans-I/O refactor
    removed.  Kept verbatim-in-spirit so the speedup number keeps measuring
    against the path the repository actually shipped before this refactor.
    """

    def __init__(self, delay_model, seed: int = 0) -> None:
        self._nodes = {}
        self._seq = 0
        self._delay_model = delay_model
        self._kernel = SimKernel(seed=seed)
        self.metrics = MetricsCollector()
        self._delivery_log = []
        self._started = False

    @property
    def now(self):
        return self._kernel.now

    def add_node(self, node):
        self._nodes[node.pid] = node
        node.bind(_Context(self, node.pid))
        return node

    def submit(self, sender, dest, payload):
        nodes = self._nodes
        kernel = self._kernel
        self._seq += 1
        envelope = Envelope(
            sender=sender,
            dest=dest,
            payload=payload,
            send_time=kernel.now,
            depth=nodes[sender].causal_depth + 1,
            seq=self._seq,
        )
        delay = self._delay_model.delay(envelope, kernel.rng)
        if delay < 0 or delay != delay or delay == float("inf"):
            raise ValueError(f"invalid delay {delay!r}")
        kernel.schedule_at(MessageDelivery(envelope), kernel.now + delay)
        kernel.pending_messages += 1
        self.metrics.record_send(sender, dest, envelope.mtype, envelope)
        return envelope

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for node in self._nodes.values():
            node.on_start()

    def step(self):
        kernel = self._kernel
        event = kernel.pop()
        if event is None:
            return None
        envelope = event.envelope
        envelope.deliver_time = kernel.now
        receiver = self._nodes[envelope.dest]
        if receiver.causal_depth < envelope.depth:
            receiver.causal_depth = envelope.depth
        kernel.pending_messages -= 1
        self.metrics.record_delivery(envelope.sender, envelope.dest, envelope.mtype)
        self._delivery_log.append(envelope)
        receiver.on_message(envelope.sender, envelope.payload)
        return envelope


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _run_replica(network_class, n: int, hops: int) -> tuple:
    network = network_class(FixedDelay(1.0), seed=0)
    for pid in range(n):
        network.add_node(_CallbackForwarder(pid, n, hops))
    network.start()
    start = time.perf_counter()
    delivered = 0
    while network.step() is not None:
        delivered += 1
    elapsed = time.perf_counter() - start
    return delivered, elapsed


def run_seed(n: int, hops: int) -> tuple:
    return _run_replica(_SeedNetwork, n, hops)


def run_shim(n: int, hops: int) -> tuple:
    return _run_replica(_ShimNetwork, n, hops)


def _run_engine(engine, n: int, hops: int) -> tuple:
    for pid in range(n):
        engine.add_core(Forwarder(pid, n, hops))
    engine.start()
    start = time.perf_counter()
    result = engine.run_until_quiescent(max_messages=n * hops + 1)
    elapsed = time.perf_counter() - start
    return result.delivered, elapsed


def run_kernel(n: int, hops: int) -> tuple:
    return _run_engine(KernelEngine(delay_model=FixedDelay(1.0), seed=0), n, hops)


def run_turbo(n: int, hops: int) -> tuple:
    return _run_engine(TurboEngine(delay_model=FixedDelay(1.0), seed=0), n, hops)


def run_async(n: int, hops: int) -> tuple:
    """The asyncio backend's in-process transport (the network-path row).

    Timing includes the start events (the async run driver owns them); they
    are ``n`` sends against ``n * hops`` deliveries, i.e. noise.  Deliveries
    are dispatched inline off the virtual-time calendar on a live event
    loop — no per-message task or queue hand-off — so this row tracks the
    residual cost of the asyncio machinery (loop entry, calendar heap,
    wall-clock pacing hooks) rather than raw simulation speed.
    """
    engine = AsyncEngine(delay_model=FixedDelay(1.0), seed=0)
    for pid in range(n):
        engine.add_core(Forwarder(pid, n, hops))
    start = time.perf_counter()
    result = engine.run_until_quiescent(max_messages=n * hops + 1)
    elapsed = time.perf_counter() - start
    return result.delivered, elapsed


RUNNERS = {
    "seed": run_seed,
    "shim": run_shim,
    "kernel": run_kernel,
    "turbo": run_turbo,
    "async": run_async,
}


def _git_sha() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return completed.stdout.strip() if completed.returncode == 0 else "unknown"


def measure(n: int, hops: int, repeats: int, substrates) -> dict:
    """Best-of-``repeats`` events/s per substrate, interleaved against drift."""
    expected = n * hops
    # Warm-up (JIT-less CPython still benefits from warmed allocator/caches).
    for name in substrates:
        RUNNERS[name](n, max(1, hops // 20))
    best = {name: float("inf") for name in substrates}
    for _ in range(max(1, repeats)):
        for name in substrates:
            delivered, elapsed = RUNNERS[name](n, hops)
            assert delivered == expected, (name, delivered, expected)
            best[name] = min(best[name], elapsed)
    return {name: expected / elapsed for name, elapsed in best.items()}


def check_regression(rates: dict, baseline_path: str, max_regression: float) -> list:
    """Compare speedup *ratios* against the committed baseline artifact."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    problems = []
    for ratio_name in ("turbo_vs_shim", "kernel_vs_shim", "async_vs_seed"):
        recorded = baseline.get("speedups", {}).get(ratio_name)
        numerator, denominator = ratio_name.split("_vs_")
        if recorded is None or numerator not in rates or denominator not in rates:
            continue
        current = rates[numerator] / rates[denominator]
        floor = recorded * (1.0 - max_regression)
        if current < floor:
            problems.append(
                f"{ratio_name}: {current:.2f}x is more than "
                f"{max_regression:.0%} below the committed {recorded:.2f}x"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=25)
    parser.add_argument("--messages", type=int, default=200_000)
    parser.add_argument(
        "--smoke", action="store_true", help="CI mode: 20k messages, ~seconds"
    )
    parser.add_argument(
        "--backend",
        choices=sorted(RUNNERS),
        default=None,
        help="measure one substrate only (default: all five)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless turbo/shim >= this ratio",
    )
    parser.add_argument(
        "--min-async-vs-seed",
        type=float,
        default=None,
        help="exit non-zero unless async/seed >= this ratio "
        "(the wire-speed bar: the event loop must beat the pre-kernel loop)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per substrate; best (minimum) elapsed is used",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the BENCH_kernel.json perf-trajectory artifact to PATH",
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE",
        default=None,
        help="fail if speedup ratios regress vs this committed artifact",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed relative drop of a speedup ratio before failing (default 0.25)",
    )
    args = parser.parse_args(argv)

    messages = 20_000 if args.smoke else args.messages
    n = args.nodes
    hops = messages // n
    needs_ratios = args.min_speedup or args.json or args.check_against
    if args.backend and needs_ratios:
        parser.error(
            "--backend measures one substrate, but --json/--check-against/"
            "--min-speedup need all of them for the speedup ratios"
        )
    substrates = [args.backend] if args.backend else list(RUNNERS)

    rates = measure(n, hops, args.repeats, substrates)

    print(f"nodes={n} messages={n * hops} repeats={args.repeats}")
    for name in substrates:
        print(f"{name:>7}: {rates[name]:>12,.0f} events/s")
    speedups = {}
    if "shim" in rates:
        for backend in ("kernel", "turbo", "async"):
            if backend in rates:
                speedups[f"{backend}_vs_shim"] = rates[backend] / rates["shim"]
    if "kernel" in rates and "turbo" in rates:
        speedups["turbo_vs_kernel"] = rates["turbo"] / rates["kernel"]
    if "seed" in rates and "kernel" in rates:
        speedups["kernel_vs_seed"] = rates["kernel"] / rates["seed"]
    if "seed" in rates and "async" in rates:
        speedups["async_vs_seed"] = rates["async"] / rates["seed"]
    for name, value in speedups.items():
        print(f"{name}: {value:.2f}x")

    if args.json:
        payload = {
            "schema": BENCH_SCHEMA,
            "git_sha": _git_sha(),
            "created_unix": time.time(),
            "python": sys.version.split()[0],
            "nodes": n,
            "messages": n * hops,
            "repeats": args.repeats,
            "events_per_second": {name: round(rate, 1) for name, rate in rates.items()},
            "speedups": {name: round(value, 3) for name, value in speedups.items()},
        }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    status = 0
    if args.min_speedup is not None:
        turbo_speedup = speedups.get("turbo_vs_shim", 0.0)
        if turbo_speedup < args.min_speedup:
            print(f"FAIL: turbo speedup {turbo_speedup:.2f}x < required {args.min_speedup:.2f}x")
            status = 1
    if args.min_async_vs_seed is not None:
        async_ratio = speedups.get("async_vs_seed", 0.0)
        if async_ratio < args.min_async_vs_seed:
            print(
                f"FAIL: async/seed {async_ratio:.2f}x < required "
                f"{args.min_async_vs_seed:.2f}x"
            )
            status = 1
    if args.check_against:
        problems = check_regression(rates, args.check_against, args.max_regression)
        for problem in problems:
            print(f"FAIL: {problem}")
        if problems:
            status = 1
        else:
            print(f"regression gate OK (allowed drop {args.max_regression:.0%})")
    return status


if __name__ == "__main__":
    sys.exit(main())
