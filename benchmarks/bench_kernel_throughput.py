#!/usr/bin/env python3
"""Kernel throughput: events/sec of the sim kernel vs a seed-equivalent baseline.

The kernel refactor (ISSUE 1) promised a faster hot path via three changes:

* **mutate-in-place delivery stamping** instead of one frozen-dataclass copy
  per delivered message (``Envelope.delivered_at``),
* **metrics-gated lazy ``estimate_size``** instead of a recursive payload
  walk on every send,
* **``__slots__``** on the envelope/event types.

This benchmark measures both sides of that promise on the same workload —
``n`` nodes forwarding messages round-robin until ``--messages`` total
deliveries — and reports the speedup.  The baseline is a faithful in-file
replica of the *seed* transport loop (frozen-dataclass envelope, eager size
estimation, heap of tuples) driving the exact same node code, so the ratio
isolates the transport hot path.

Run::

    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py            # full: 200k msgs
    PYTHONPATH=src python benchmarks/bench_kernel_throughput.py --smoke    # CI: 20k msgs
"""

from __future__ import annotations

import argparse
import heapq
import sys
import time
from dataclasses import dataclass
from typing import Any, Hashable, Optional

from repro.metrics.collector import MetricsCollector
from repro.transport import FixedDelay, Network, Node, NodeContext
from repro.transport.message import estimate_size


# ---------------------------------------------------------------------------
# Workload: round-robin forwarding, `hops` messages per chain
# ---------------------------------------------------------------------------


class Forwarder(Node):
    """Starts one chain and forwards every received token to the next node."""

    def __init__(self, pid: int, n: int, hops: int) -> None:
        super().__init__(pid)
        self.n = n
        self.hops = hops

    def _next(self) -> int:
        return (self.pid + 1) % self.n

    def on_start(self) -> None:
        if self.hops > 0:
            self.ctx.send(self._next(), (self.hops, frozenset({"tok", str(self.pid)})))

    def on_message(self, sender: Hashable, payload: Any) -> None:
        hops, token = payload
        if hops > 1:
            self.ctx.send(self._next(), (hops - 1, token))


# ---------------------------------------------------------------------------
# Seed-equivalent baseline transport (pre-kernel semantics, verbatim)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _SeedEnvelope:
    """Replica of the seed's frozen-dataclass envelope."""

    sender: Hashable
    dest: Hashable
    payload: Any
    send_time: float
    deliver_time: Optional[float] = None
    depth: int = 1
    seq: int = 0
    size: int = 0

    def delivered_at(self, time: float) -> "_SeedEnvelope":
        return _SeedEnvelope(
            sender=self.sender,
            dest=self.dest,
            payload=self.payload,
            send_time=self.send_time,
            deliver_time=time,
            depth=self.depth,
            seq=self.seq,
            size=self.size,
        )

    @property
    def mtype(self) -> str:
        payload = self.payload
        mtype = getattr(payload, "mtype", None)
        if isinstance(mtype, str):
            return mtype
        return type(payload).__name__


class _SeedNetwork:
    """The pre-kernel message-only delivery loop (eager sizes, frozen copies)."""

    def __init__(self, delay_model, seed: int = 0) -> None:
        import random

        self._nodes = {}
        self._pids = ()
        self._queue = []
        self._seq = 0
        self._delay_model = delay_model
        self._rng = random.Random(seed)
        self._now = 0.0
        self.metrics = MetricsCollector()
        self._delivery_log = []
        self._started = False

    @property
    def pids(self):
        return self._pids

    @property
    def now(self):
        return self._now

    def add_node(self, node: Node) -> Node:
        self._nodes[node.pid] = node
        self._pids = tuple(self._nodes.keys())
        node.bind(NodeContext(self, node.pid))
        return node

    def submit(self, sender, dest, payload):
        sender_node = self._nodes[sender]
        self._seq += 1
        envelope = _SeedEnvelope(
            sender=sender,
            dest=dest,
            payload=payload,
            send_time=self._now,
            depth=sender_node.causal_depth + 1,
            seq=self._seq,
            size=estimate_size(payload),
        )
        delay = self._delay_model.delay(envelope, self._rng)
        heapq.heappush(self._queue, (self._now + delay, self._seq, envelope))
        self.metrics.record_send(sender, dest, envelope.mtype, envelope.size)
        return envelope

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for node in self._nodes.values():
            node.on_start()

    def step(self):
        if not self._queue:
            return None
        deliver_time, _seq, envelope = heapq.heappop(self._queue)
        self._now = max(self._now, deliver_time)
        delivered = envelope.delivered_at(self._now)
        receiver = self._nodes[delivered.dest]
        receiver.causal_depth = max(receiver.causal_depth, delivered.depth)
        self.metrics.record_delivery(delivered.sender, delivered.dest, delivered.mtype)
        self._delivery_log.append(delivered)
        receiver.on_message(delivered.sender, delivered.payload)
        return delivered


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def run_kernel(n: int, hops: int) -> tuple:
    network = Network(delay_model=FixedDelay(1.0), seed=0)
    for pid in range(n):
        network.add_node(Forwarder(pid, n, hops))
    network.start()
    start = time.perf_counter()
    delivered = 0
    while network.step() is not None:
        delivered += 1
    elapsed = time.perf_counter() - start
    return delivered, elapsed


def run_baseline(n: int, hops: int) -> tuple:
    network = _SeedNetwork(delay_model=FixedDelay(1.0), seed=0)
    for pid in range(n):
        network.add_node(Forwarder(pid, n, hops))
    network.start()
    start = time.perf_counter()
    delivered = 0
    while network.step() is not None:
        delivered += 1
    elapsed = time.perf_counter() - start
    return delivered, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=25)
    parser.add_argument("--messages", type=int, default=200_000)
    parser.add_argument(
        "--smoke", action="store_true", help="CI mode: 20k messages, ~seconds"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless kernel/baseline >= this ratio",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repetitions per side; best (minimum) elapsed is used",
    )
    args = parser.parse_args(argv)

    messages = 20_000 if args.smoke else args.messages
    n = args.nodes
    hops = messages // n

    # Warm-up (JIT-less CPython still benefits from warmed allocator/caches).
    run_kernel(n, max(1, hops // 20))
    run_baseline(n, max(1, hops // 20))

    # Best-of-N: the minimum elapsed is the least noise-contaminated sample
    # on a shared machine; interleave the sides so drift hits both equally.
    elapsed_b = elapsed_k = float("inf")
    for _ in range(max(1, args.repeats)):
        delivered_b, once_b = run_baseline(n, hops)
        delivered_k, once_k = run_kernel(n, hops)
        elapsed_b = min(elapsed_b, once_b)
        elapsed_k = min(elapsed_k, once_k)
    assert delivered_b == delivered_k == n * hops, (delivered_b, delivered_k)

    rate_b = delivered_b / elapsed_b
    rate_k = delivered_k / elapsed_k
    speedup = rate_k / rate_b
    print(f"nodes={n} messages={n * hops}")
    print(f"seed-equivalent baseline: {rate_b:>12,.0f} events/s  ({elapsed_b:.3f}s)")
    print(f"sim kernel:               {rate_k:>12,.0f} events/s  ({elapsed_k:.3f}s)")
    print(f"speedup: {speedup:.2f}x")
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x < required {args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
