"""E9 — Section 2: breadth argument against the restrictive specification."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_breadth_experiment


def test_e9_breadth(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_breadth_experiment)
    for row in outcome["outcomes"]:
        # Our specification always holds.
        assert row["our_spec_ok"]
        # The restrictive specification becomes infeasible once the breadth
        # reaches the process count.
        if row["breadth"] >= 4:
            assert not row["restricted_feasible"]
