"""E9 — Section 2: breadth argument against the restrictive specification."""

from conftest import run_experiment_benchmark


def test_e9_breadth(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E9")
    # Our specification always holds; the restrictive one becomes infeasible
    # once the breadth reaches the process count.
    assert outcome["ok"], outcome["table"]
