#!/usr/bin/env python3
"""Sharded + batched RSM data-plane throughput (wall clock, turbo backend).

Three wall-clock studies over the sharded data plane (PR 9):

* **batch curve** — 25 replicas as 5 shards of 5 (f=1 per group) decide the
  same command stream under ``batch_size`` 1..16.  ``batch_size=1`` forces
  one GWTS round per command; batching amortises the round's O(group³)
  reliable-broadcast ack traffic over the whole batch.  The acceptance bar:
  commands-decided/s at ``batch_size >= 8`` must be at least **2x** the
  unbatched rate (the CI gate holds a 1.5x absolute floor,
  ``--min-batched-speedup``).
* **shard curve** — a fixed fleet of 24 replicas split into 1..6 groups,
  same workload.  Per-round message cost scales with the *cube* of the
  group size, so splitting the fleet is worth orders of magnitude: the
  monolithic 1x24 anchor runs ~800k messages per GWTS round and is the
  slowest point by far (full mode only — it takes minutes and one repeat).
* **large-n scaling rows** — message complexity and decision latency at
  n=100 and n=250, the quorum-size study.  Full Byzantine GLA is measured
  where wall-feasible (WTS single-shot at n=100, ~2M messages); the
  echo-based crash baseline covers both sizes.  Rows are recorded, not
  gated: they document the quorum-size cost, they do not race the runner.

Smoke mode measures the same workloads as full mode (so the speedup ratios
are comparable against the committed artifact) but only the gated subset of
points: batch {1, 8}, shards {2, 6}, and the n=100 crash row.

Run::

    PYTHONPATH=src python benchmarks/bench_shard_throughput.py              # full curves
    PYTHONPATH=src python benchmarks/bench_shard_throughput.py --smoke      # CI subset
    PYTHONPATH=src python benchmarks/bench_shard_throughput.py \
        --json BENCH_shard.json                                             # artifact
    PYTHONPATH=src python benchmarks/bench_shard_throughput.py --smoke \
        --check-against BENCH_shard.json --min-batched-speedup 1.5          # CI gate

The JSON artifact records best-of-``--repeats`` commands/s per point plus
the git SHA and timestamp; the regression gate compares the *speedup
ratios* (``batched_vs_unbatched``, ``sharded_scaleup``) against the
committed baseline — ratios transfer across machines where absolute rates
do not.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time

from repro.core.quorum import max_faults
from repro.harness.workloads import (
    run_crash_gla_scenario,
    run_sharded_rsm_scenario,
    run_wts_scenario,
)
from repro.lattice.set_lattice import SetLattice

BENCH_SCHEMA = "repro-bench-shard/v1"

#: Batch curve topology: 25 replicas as 5 shards of 5, f=1 per group.
BATCH_REPLICAS = 25
BATCH_SHARDS = 5
BATCH_COMMANDS = 60
#: Shard curve topology: a fixed fleet of 24 replicas, f=1 per group.
SHARD_REPLICAS = 24
SHARD_COMMANDS = 24

FULL_BATCH_SWEEP = (1, 2, 4, 8, 16)
SMOKE_BATCH_SWEEP = (1, 8)
FULL_SHARD_SWEEP = (1, 2, 3, 4, 6)
SMOKE_SHARD_SWEEP = (2, 6)


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _scripts(total_commands: int) -> dict:
    per_client = total_commands // 2
    return {
        f"c{index}": [("update", (f"obj-{index}-{k}", k)) for k in range(per_client)]
        for index in range(2)
    }


def run_point(n_replicas: int, shards: int, batch_size: int, total_commands: int) -> tuple:
    """One sharded-RSM run; returns (commands completed, elapsed wall seconds)."""
    start = time.perf_counter()
    scenario = run_sharded_rsm_scenario(
        n_replicas=n_replicas,
        f=1,
        shards=shards,
        client_scripts=_scripts(total_commands),
        rounds=total_commands + 10,
        seed=7,
        backend="turbo",
        batch_size=batch_size,
        client_pipeline=16,
        max_messages=8_000_000,
    )
    elapsed = time.perf_counter() - start
    completed = sum(
        client.completed_updates() for client in scenario.extras["clients"].values()
    )
    return completed, elapsed, scenario.run.delivered


def measure_curve(points, runner, repeats: int) -> dict:
    """Best-of-``repeats`` commands/s per point (the heaviest points once).

    The monolithic shard anchor and the unbatched batch anchor dominate the
    wall budget by construction — that is the phenomenon being measured —
    so any point slower than 30s wall is measured once instead of
    ``repeats`` times.
    """
    rates = {}
    for point in points:
        best = float("inf")
        runs = repeats
        for _ in range(max(1, repeats)):
            completed, elapsed, _ = runner(point)
            expected = point_expected(point)
            assert completed == expected, (point, completed, expected)
            best = min(best, elapsed)
            if elapsed > 30.0:
                runs = 1
                break
        rates[point] = (point_expected(point) / best, runs)
    return rates


def point_expected(point) -> int:
    kind, _value = point
    return BATCH_COMMANDS if kind == "batch" else SHARD_COMMANDS


def run_curve_point(point) -> tuple:
    kind, value = point
    if kind == "batch":
        return run_point(BATCH_REPLICAS, BATCH_SHARDS, value, BATCH_COMMANDS)
    return run_point(SHARD_REPLICAS, value, 8, SHARD_COMMANDS)


def run_scaling_rows(smoke: bool) -> list[dict]:
    """The large-n rows: wall time, messages and simulated decision latency."""
    rows: list[dict] = []

    def record(protocol: str, n: int, f: int, quorum: int, scenario, elapsed: float) -> None:
        decided = sum(1 for decs in scenario.decisions().values() if decs)
        last = max((r.time for r in scenario.metrics.decisions), default=0.0)
        rows.append(
            {
                "protocol": protocol,
                "n": n,
                "f": f,
                "quorum": quorum,
                "decided": decided,
                "correct": len(scenario.correct_pids),
                "messages": scenario.run.delivered,
                "msgs_per_process": round(
                    scenario.metrics.mean_messages_per_process(scenario.correct_pids), 1
                ),
                "last_decision_delays": last,
                "wall_s": round(elapsed, 2),
            }
        )

    sizes = (100,) if smoke else (100, 250)
    for n in sizes:
        f = max_faults(n)
        start = time.perf_counter()
        crash = run_crash_gla_scenario(
            n=n, f=f, values_per_process=1, rounds=2, seed=141 + n,
            backend="turbo", max_messages=4_000_000,
        )
        record("crash-GLA", n, f, n // 2 + 1, crash, time.perf_counter() - start)
    if not smoke:
        n, f = 100, max_faults(100)
        start = time.perf_counter()
        wts = run_wts_scenario(
            n=n, f=f,
            proposals={f"p{i}": frozenset({f"v{i}"}) for i in range(3)},
            lattice=SetLattice(), seed=1141, backend="turbo",
            max_messages=4_000_000,
        )
        record("WTS", n, f, (n + f) // 2 + 1, wts, time.perf_counter() - start)
    return rows


def check_regression(speedups: dict, baseline_path: str, max_regression: float) -> list:
    """Compare speedup *ratios* against the committed baseline artifact."""
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    problems = []
    for ratio_name in ("batched_vs_unbatched", "sharded_scaleup"):
        recorded = baseline.get("speedups", {}).get(ratio_name)
        current = speedups.get(ratio_name)
        if recorded is None or current is None:
            continue
        floor = recorded * (1.0 - max_regression)
        if current < floor:
            problems.append(
                f"{ratio_name}: {current:.2f}x is more than "
                f"{max_regression:.0%} below the committed {recorded:.2f}x"
            )
    return problems


def _git_sha() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return completed.stdout.strip() if completed.returncode == 0 else "unknown"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI mode: gated points only (batch 1/8, shards 2/6, n=100 row)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repetitions per point; best (minimum) elapsed is used "
        "(points slower than 30s wall run once regardless)",
    )
    parser.add_argument(
        "--min-batched-speedup",
        type=float,
        default=None,
        help="exit non-zero unless batch>=8 commands/s >= this multiple of batch=1",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the BENCH_shard.json perf-trajectory artifact to PATH",
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE",
        default=None,
        help="fail if speedup ratios regress vs this committed artifact",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.5,
        help="allowed relative drop of a speedup ratio before failing "
        "(default 0.5: wall ratios of multi-second protocol runs are noisier "
        "than the kernel microbenchmark's)",
    )
    args = parser.parse_args(argv)

    batch_sweep = SMOKE_BATCH_SWEEP if args.smoke else FULL_BATCH_SWEEP
    shard_sweep = SMOKE_SHARD_SWEEP if args.smoke else FULL_SHARD_SWEEP
    points = [("batch", value) for value in batch_sweep] + [
        ("shards", value) for value in shard_sweep
    ]
    rates = measure_curve(points, run_curve_point, args.repeats)

    print(
        f"batch curve: {BATCH_REPLICAS} replicas as {BATCH_SHARDS} shards, "
        f"{BATCH_COMMANDS} commands | shard curve: {SHARD_REPLICAS} replicas, "
        f"{SHARD_COMMANDS} commands | repeats={args.repeats}"
    )
    for point in points:
        kind, value = point
        rate, runs = rates[point]
        print(f"{kind}={value:>2}: {rate:>8.1f} commands/s  (best of {runs})")

    speedups = {}
    batch_rates = {value: rates[("batch", value)][0] for value in batch_sweep}
    shard_rates = {value: rates[("shards", value)][0] for value in shard_sweep}
    best_batched = max(rate for value, rate in batch_rates.items() if value >= 8)
    speedups["batched_vs_unbatched"] = best_batched / batch_rates[1]
    # The gated scale-up compares the same pair of points (shards 6 vs 2) in
    # smoke and full mode; the monolithic 1x24 anchor is full-mode-only and
    # recorded, not gated.
    speedups["sharded_scaleup"] = shard_rates[max(shard_sweep)] / shard_rates[2]
    if 1 in shard_rates:
        speedups["sharded_vs_monolithic"] = (
            shard_rates[max(shard_sweep)] / shard_rates[1]
        )
    for name, value in speedups.items():
        print(f"{name}: {value:.2f}x")

    scaling = run_scaling_rows(args.smoke)
    for row in scaling:
        print(
            f"{row['protocol']:>9} n={row['n']:>3} f={row['f']:>2} "
            f"quorum={row['quorum']:>3}: {row['decided']}/{row['correct']} decided, "
            f"{row['messages']:,} msgs, {row['msgs_per_process']:.0f}/proc, "
            f"{row['last_decision_delays']:.0f} delays, {row['wall_s']:.1f}s wall"
        )

    if args.json:
        payload = {
            "schema": BENCH_SCHEMA,
            "git_sha": _git_sha(),
            "created_unix": time.time(),
            "python": sys.version.split()[0],
            "batch_topology": {
                "replicas": BATCH_REPLICAS,
                "shards": BATCH_SHARDS,
                "commands": BATCH_COMMANDS,
            },
            "shard_topology": {"replicas": SHARD_REPLICAS, "commands": SHARD_COMMANDS},
            "repeats": args.repeats,
            "commands_per_second": {
                "batch": {str(value): round(rate, 2) for value, rate in batch_rates.items()},
                "shards": {str(value): round(rate, 2) for value, rate in shard_rates.items()},
            },
            "speedups": {name: round(value, 3) for name, value in speedups.items()},
            "scaling": scaling,
        }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")

    status = 0
    if args.min_batched_speedup is not None:
        measured = speedups["batched_vs_unbatched"]
        if measured < args.min_batched_speedup:
            print(
                f"FAIL: batched_vs_unbatched {measured:.2f}x < "
                f"required {args.min_batched_speedup:.2f}x"
            )
            status = 1
    if args.check_against:
        problems = check_regression(speedups, args.check_against, args.max_regression)
        for problem in problems:
            print(f"FAIL: {problem}")
        if problems:
            status = 1
        else:
            print(f"regression gate OK (allowed drop {args.max_regression:.0%})")
    return status


if __name__ == "__main__":
    sys.exit(main())
