"""E4 — Section 5.1.3: WTS message complexity is quadratic in n."""

from conftest import run_experiment_benchmark


def test_e4_wts_messages(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E4")
    # Quadratic shape: the verdict checks the log-log slope sits clearly
    # above linear and does not exceed cubic.
    assert outcome["ok"], f"fit order {outcome['fit_order']:.2f} not quadratic"
