"""E4 — Section 5.1.3: WTS message complexity is quadratic in n."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_wts_messages_experiment


def test_e4_wts_messages(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_wts_messages_experiment)
    # Quadratic shape: the log-log slope should sit clearly above linear and
    # not exceed cubic.
    assert 1.5 <= outcome["fit_order"] <= 3.0
