"""Shared helpers for the benchmark harness.

Every benchmark wraps one experiment via the orchestrator's
:class:`~repro.orchestrator.spec.ExperimentSpec` registry — the same uniform
entry point ``python -m repro`` uses — instead of importing runners and
re-deriving pass/fail conditions by hand.  The experiments are full
simulations (not micro-kernels), so each benchmark executes its experiment
exactly once per round via ``benchmark.pedantic`` and attaches the
experiment's headline numbers to ``benchmark.extra_info`` — the
paper-vs-measured record that EXPERIMENTS.md is built from.
"""

from __future__ import annotations

from typing import Any

from repro.orchestrator.spec import get_spec


def run_experiment_benchmark(
    benchmark,
    experiment_id: str,
    quick: bool = True,
    seed: int | None = None,
    **params,
) -> dict[str, Any]:
    """Run one experiment by id under pytest-benchmark and record its outcome."""
    spec = get_spec(experiment_id)
    outcome_holder: dict[str, Any] = {}

    def _run() -> None:
        outcome_holder["outcome"] = spec.run(seed=seed, quick=quick, **params)

    benchmark.pedantic(_run, rounds=1, iterations=1)
    outcome = outcome_holder["outcome"]
    benchmark.extra_info["experiment"] = outcome.get("experiment")
    benchmark.extra_info["expected"] = outcome.get("expected")
    benchmark.extra_info["ok"] = outcome.get("ok")
    benchmark.extra_info["headline"] = outcome.get("headline")
    # Print the table so a --benchmark-only run doubles as a report.
    print()
    print(outcome["table"])
    return outcome
