"""Shared helpers for the benchmark harness.

Every benchmark wraps one experiment runner from
:mod:`repro.harness.experiments`.  The experiments are full simulations (not
micro-kernels), so each benchmark executes its experiment exactly once per
round via ``benchmark.pedantic`` and attaches the experiment's headline
numbers to ``benchmark.extra_info`` — the paper-vs-measured record that
EXPERIMENTS.md is built from.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

import pytest


def run_experiment_benchmark(
    benchmark,
    runner: Callable[..., Dict[str, Any]],
    quick: bool = True,
    **kwargs,
) -> Dict[str, Any]:
    """Run ``runner`` once under pytest-benchmark and record its outcome."""
    outcome_holder: Dict[str, Any] = {}

    def _run() -> None:
        outcome_holder["outcome"] = runner(quick=quick, **kwargs)

    benchmark.pedantic(_run, rounds=1, iterations=1)
    outcome = outcome_holder["outcome"]
    benchmark.extra_info["experiment"] = outcome.get("experiment")
    benchmark.extra_info["expected"] = outcome.get("expected")
    # Print the table so a --benchmark-only run doubles as a report.
    print()
    print(outcome["table"])
    return outcome
