"""E7 — Section 6.2/6.3: GWTS liveness and inclusivity under round clogging."""

from conftest import run_experiment_benchmark


def test_e7_gwts_liveness(benchmark):
    outcome = run_experiment_benchmark(benchmark, "E7")
    assert outcome["ok"], outcome["table"]
    assert all(count >= 1 for count in outcome["decisions_per_process"].values())
