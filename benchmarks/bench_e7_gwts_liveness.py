"""E7 — Section 6.2/6.3: GWTS liveness and inclusivity under round clogging."""

from conftest import run_experiment_benchmark

from repro.harness.experiments import run_gwts_liveness_experiment


def test_e7_gwts_liveness(benchmark):
    outcome = run_experiment_benchmark(benchmark, run_gwts_liveness_experiment)
    assert outcome["check"].ok
    assert all(count >= 1 for count in outcome["decisions_per_process"].values())
