#!/usr/bin/env python3
"""Throughput-vs-tail-latency curves for the wall-clock AsyncEngine.

Closed-loop drivers (issue, wait, issue) hide queueing delay: the harder the
system struggles, the *less* load a closed loop offers, so its latency
numbers flatter the system (coordinated omission).  This bench drives the
GWTS cluster with the **open-loop** generator instead — values arrive at a
fixed rate regardless of how fast decisions come back — and records the
honest p50/p95/p99/max decision latencies at each offered rate.

One curve per configuration:

* ``async`` — in-process transport (inline virtual-time dispatch);
* ``async-tcp-json`` — localhost TCP, tagged-JSON frames;
* ``async-tcp-binary`` — localhost TCP, compact binary frames.

Offered load is swept by shrinking the arrival interval; the simulated
arrival calendar is scaled onto the wall clock by ``time_scale``, so the
wall-clock offered rate is ``1 / (interval * time_scale)`` values/s.

Run::

    PYTHONPATH=src python benchmarks/bench_async_latency.py               # full sweep
    PYTHONPATH=src python benchmarks/bench_async_latency.py --smoke       # CI: one point
    PYTHONPATH=src python benchmarks/bench_async_latency.py \
        --json BENCH_async_latency.json                                   # artifact

The artifact is a trajectory record (absolute wall-clock latencies are
machine-dependent), not a regression gate: the gated async number lives in
``BENCH_kernel.json`` (``async_vs_seed``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import time

from repro.harness import run_open_loop_scenario

BENCH_SCHEMA = "repro-bench-async-latency/v1"

#: (label, engine kwargs beyond backend="async").
CONFIGS = (
    ("async", {}),
    ("async-tcp-json", {"transport": "tcp", "framing": "json"}),
    ("async-tcp-binary", {"transport": "tcp", "framing": "binary"}),
)


def _git_sha() -> str:
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return completed.stdout.strip() if completed.returncode == 0 else "unknown"


def measure_point(
    label: str,
    engine_kwargs: dict,
    interval: float,
    time_scale: float,
    values: int,
    seed: int,
) -> dict:
    """One (configuration, offered-rate) point of the curve."""
    scenario = run_open_loop_scenario(
        n=4,
        f=1,
        values=values,
        interval=interval,
        seed=seed,
        backend="async",
        time_scale=time_scale,
        **engine_kwargs,
    )
    report = scenario.extras["open_loop"]
    offered_rate = 1.0 / (interval * time_scale)
    point = {
        "config": label,
        "interval": interval,
        "offered_per_s": round(offered_rate, 1),
        "offered": report.offered,
        "decided": report.decided,
        "all_decided": report.all_decided,
        "latency": report.latency,
    }
    return point


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="CI mode: one rate point per config"
    )
    parser.add_argument(
        "--values", type=int, default=24, help="values offered per point"
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.001,
        help="wall-clock seconds per simulated time unit",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the BENCH_async_latency.json trajectory artifact to PATH",
    )
    args = parser.parse_args(argv)

    # Simulated arrival intervals; with --time-scale 0.001 these are offered
    # rates of ~100, ~200 and ~500 values/s on the wall clock.
    intervals = (10.0,) if args.smoke else (10.0, 5.0, 2.0)
    values = max(4, args.values // 4) if args.smoke else args.values

    points = []
    for label, engine_kwargs in CONFIGS:
        for interval in intervals:
            point = measure_point(
                label, engine_kwargs, interval, args.time_scale, values, args.seed
            )
            points.append(point)
            latency = point["latency"] or {}
            print(
                f"{label:>17} @ {point['offered_per_s']:>7,.1f}/s: "
                f"decided {point['decided']}/{point['offered']}  "
                f"p50 {latency.get('p50', float('nan')) * 1e3:7.2f}ms  "
                f"p95 {latency.get('p95', float('nan')) * 1e3:7.2f}ms  "
                f"p99 {latency.get('p99', float('nan')) * 1e3:7.2f}ms  "
                f"max {latency.get('max', float('nan')) * 1e3:7.2f}ms"
            )
            if not point["all_decided"]:
                print(f"FAIL: {label} dropped values at interval {interval}")
                return 1

    if args.json:
        payload = {
            "schema": BENCH_SCHEMA,
            "git_sha": _git_sha(),
            "created_unix": time.time(),
            "python": sys.version.split()[0],
            "time_scale": args.time_scale,
            "values_per_point": values,
            "seed": args.seed,
            "points": points,
        }
        pathlib.Path(args.json).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
